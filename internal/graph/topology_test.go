package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStarShape(t *testing.T) {
	g := Star(6, 2)
	if g.NumNodes() != 7 {
		t.Fatalf("NumNodes = %d, want 7", g.NumNodes())
	}
	if g.NumChannels() != 6 {
		t.Fatalf("NumChannels = %d, want 6", g.NumChannels())
	}
	if g.InDegree(0) != 6 || g.OutDegree(0) != 6 {
		t.Fatalf("center degree = in %d out %d, want 6/6", g.InDegree(0), g.OutDegree(0))
	}
	for leaf := 1; leaf <= 6; leaf++ {
		if g.InDegree(NodeID(leaf)) != 1 {
			t.Fatalf("leaf %d in-degree = %d, want 1", leaf, g.InDegree(NodeID(leaf)))
		}
	}
}

func TestPathShape(t *testing.T) {
	g := Path(4, 1)
	if g.NumChannels() != 3 {
		t.Fatalf("NumChannels = %d, want 3", g.NumChannels())
	}
	if g.InDegree(0) != 1 || g.InDegree(3) != 1 {
		t.Fatal("path endpoints must have degree 1")
	}
	if g.InDegree(1) != 2 || g.InDegree(2) != 2 {
		t.Fatal("path interior nodes must have degree 2")
	}
}

func TestCircleShape(t *testing.T) {
	g := Circle(5, 1)
	if g.NumChannels() != 5 {
		t.Fatalf("NumChannels = %d, want 5", g.NumChannels())
	}
	for v := 0; v < 5; v++ {
		if g.InDegree(NodeID(v)) != 2 {
			t.Fatalf("node %d degree = %d, want 2", v, g.InDegree(NodeID(v)))
		}
	}
	if !g.StronglyConnected() {
		t.Fatal("circle must be strongly connected")
	}
}

func TestCircleSmallDegeneratesToPath(t *testing.T) {
	g := Circle(2, 1)
	if g.NumChannels() != 1 {
		t.Fatalf("Circle(2) channels = %d, want 1", g.NumChannels())
	}
}

func TestCompleteShape(t *testing.T) {
	g := Complete(5, 1)
	if g.NumChannels() != 10 {
		t.Fatalf("NumChannels = %d, want 10", g.NumChannels())
	}
	d, conn := g.Diameter()
	if d != 1 || !conn {
		t.Fatalf("Diameter = (%d,%v), want (1,true)", d, conn)
	}
}

func TestWheelShape(t *testing.T) {
	g := Wheel(6, 1)
	if g.NumNodes() != 7 {
		t.Fatalf("NumNodes = %d, want 7", g.NumNodes())
	}
	// Hub connects to all 6 rim nodes; rim nodes have hub + 2 rim links.
	if g.InDegree(0) != 6 {
		t.Fatalf("hub degree = %d, want 6", g.InDegree(0))
	}
	for v := 1; v <= 6; v++ {
		if g.InDegree(NodeID(v)) != 3 {
			t.Fatalf("rim node %d degree = %d, want 3", v, g.InDegree(NodeID(v)))
		}
	}
}

func TestErdosRenyiExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	empty := ErdosRenyi(6, 0, 1, rng)
	if empty.NumEdges() != 0 {
		t.Fatalf("ER(p=0) edges = %d, want 0", empty.NumEdges())
	}
	full := ErdosRenyi(6, 1, 1, rng)
	if full.NumChannels() != 15 {
		t.Fatalf("ER(p=1) channels = %d, want 15", full.NumChannels())
	}
}

func TestErdosRenyiDeterministicPerSeed(t *testing.T) {
	a := ErdosRenyi(10, 0.4, 1, rand.New(rand.NewSource(5)))
	b := ErdosRenyi(10, 0.4, 1, rand.New(rand.NewSource(5)))
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("same seed produced different graphs: %d vs %d edges", a.NumEdges(), b.NumEdges())
	}
}

func TestBarabasiAlbertShape(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const (
		n = 30
		m = 2
	)
	g := BarabasiAlbert(n, m, 1, rng)
	if g.NumNodes() != n {
		t.Fatalf("NumNodes = %d, want %d", g.NumNodes(), n)
	}
	// Initial clique has m+1 choose 2 channels; each later node adds m.
	wantChannels := (m+1)*m/2 + (n-m-1)*m
	if g.NumChannels() != wantChannels {
		t.Fatalf("NumChannels = %d, want %d", g.NumChannels(), wantChannels)
	}
	if !g.StronglyConnected() {
		t.Fatal("BA graph must be connected")
	}
}

func TestBarabasiAlbertClampsParameters(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := BarabasiAlbert(1, 0, 1, rng) // clamps to m=1, n=2
	if g.NumNodes() < 2 {
		t.Fatalf("NumNodes = %d, want ≥ 2", g.NumNodes())
	}
}

func TestConnectedErdosRenyiAlwaysConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		g := ConnectedErdosRenyi(8, 0.15, 1, rng, 5)
		if !g.StronglyConnected() {
			t.Fatalf("trial %d: graph not strongly connected", trial)
		}
	}
}

// TestGeneratorCountsProperty pins the node/edge-count algebra of every
// deterministic generator across sizes: Star(n) has n channels, Path(n)
// n−1, Circle(n≥3) n, Complete(n) n(n−1)/2, Wheel(n) 2n.
func TestGeneratorCountsProperty(t *testing.T) {
	check := func(nRaw uint8) bool {
		n := int(nRaw%30) + 3
		if g := Star(n, 1); g.NumNodes() != n+1 || g.NumChannels() != n {
			return false
		}
		if g := Path(n, 1); g.NumNodes() != n || g.NumChannels() != n-1 {
			return false
		}
		if g := Circle(n, 1); g.NumNodes() != n || g.NumChannels() != n {
			return false
		}
		if g := Complete(n, 1); g.NumChannels() != n*(n-1)/2 {
			return false
		}
		if g := Wheel(n, 1); g.NumNodes() != n+1 || g.NumChannels() != 2*n {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestGeneratorConnectivityProperty: every deterministic generator and
// the BA process yield strongly connected graphs at any size and seed.
func TestGeneratorConnectivityProperty(t *testing.T) {
	check := func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw%25) + 3
		m := int(mRaw%3) + 1
		rng := rand.New(rand.NewSource(seed))
		for _, g := range []*Graph{
			Star(n, 1), Path(n, 1), Circle(n, 1), Complete(n, 1), Wheel(n, 1),
			BarabasiAlbert(n, m, 1, rng),
			ConnectedErdosRenyi(n, 0.2, 1, rng, 10),
		} {
			if !g.StronglyConnected() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestBarabasiAlbertDegreeBoundProperty: preferential attachment adds
// exactly m channels per new node to *distinct* targets, so every node
// past the initial clique has channel-degree ≥ m, the clique nodes have
// degree ≥ m (clique edges), and no node exceeds the structural maximum
// of one channel to every other node plus its own m attachments — in
// particular the generator must never emit parallel channels.
func TestBarabasiAlbertDegreeBoundProperty(t *testing.T) {
	check := func(seed int64, nRaw, mRaw uint8) bool {
		m := int(mRaw%4) + 1
		n := int(nRaw%40) + m + 2
		g := BarabasiAlbert(n, m, 1, rand.New(rand.NewSource(seed)))
		for v := 0; v < g.NumNodes(); v++ {
			deg := g.InDegree(NodeID(v))
			if deg < m {
				return false
			}
			if deg != len(g.Neighbors(NodeID(v))) {
				return false // parallel channel slipped through
			}
		}
		// Total channels: the m+1 clique plus m per later arrival.
		want := (m+1)*m/2 + (g.NumNodes()-m-1)*m
		return g.NumChannels() == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestConnectedErdosRenyiFallbackSuperimposesCircle forces the
// give-up path (p = 0 can never connect) and checks the fallback circle
// both connects the graph and adds no duplicate channels.
func TestConnectedErdosRenyiFallbackSuperimposesCircle(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := ConnectedErdosRenyi(7, 0, 1, rng, 4)
	if !g.StronglyConnected() {
		t.Fatal("fallback graph not strongly connected")
	}
	if g.NumChannels() != 7 {
		t.Fatalf("fallback circle channels = %d, want 7", g.NumChannels())
	}
	// With p = 1 the first draw is complete and already connected; the
	// retry loop must return it untouched.
	g = ConnectedErdosRenyi(6, 1, 1, rng, 4)
	if g.NumChannels() != 15 {
		t.Fatalf("ER(p=1) channels = %d, want 15", g.NumChannels())
	}
}

func TestChannelSymmetryProperty(t *testing.T) {
	// Property: in every generated topology, directed edges come in
	// symmetric pairs — HasEdgeBetween(a,b) ⇔ HasEdgeBetween(b,a).
	check := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%20) + 3
		rng := rand.New(rand.NewSource(seed))
		graphs := []*Graph{
			Star(n, 1), Path(n, 1), Circle(n, 1),
			ErdosRenyi(n, 0.3, 1, rng),
			BarabasiAlbert(n, 2, 1, rng),
		}
		for _, g := range graphs {
			for a := 0; a < g.NumNodes(); a++ {
				for b := 0; b < g.NumNodes(); b++ {
					if g.HasEdgeBetween(NodeID(a), NodeID(b)) != g.HasEdgeBetween(NodeID(b), NodeID(a)) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
