package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStarShape(t *testing.T) {
	g := Star(6, 2)
	if g.NumNodes() != 7 {
		t.Fatalf("NumNodes = %d, want 7", g.NumNodes())
	}
	if g.NumChannels() != 6 {
		t.Fatalf("NumChannels = %d, want 6", g.NumChannels())
	}
	if g.InDegree(0) != 6 || g.OutDegree(0) != 6 {
		t.Fatalf("center degree = in %d out %d, want 6/6", g.InDegree(0), g.OutDegree(0))
	}
	for leaf := 1; leaf <= 6; leaf++ {
		if g.InDegree(NodeID(leaf)) != 1 {
			t.Fatalf("leaf %d in-degree = %d, want 1", leaf, g.InDegree(NodeID(leaf)))
		}
	}
}

func TestPathShape(t *testing.T) {
	g := Path(4, 1)
	if g.NumChannels() != 3 {
		t.Fatalf("NumChannels = %d, want 3", g.NumChannels())
	}
	if g.InDegree(0) != 1 || g.InDegree(3) != 1 {
		t.Fatal("path endpoints must have degree 1")
	}
	if g.InDegree(1) != 2 || g.InDegree(2) != 2 {
		t.Fatal("path interior nodes must have degree 2")
	}
}

func TestCircleShape(t *testing.T) {
	g := Circle(5, 1)
	if g.NumChannels() != 5 {
		t.Fatalf("NumChannels = %d, want 5", g.NumChannels())
	}
	for v := 0; v < 5; v++ {
		if g.InDegree(NodeID(v)) != 2 {
			t.Fatalf("node %d degree = %d, want 2", v, g.InDegree(NodeID(v)))
		}
	}
	if !g.StronglyConnected() {
		t.Fatal("circle must be strongly connected")
	}
}

func TestCircleSmallDegeneratesToPath(t *testing.T) {
	g := Circle(2, 1)
	if g.NumChannels() != 1 {
		t.Fatalf("Circle(2) channels = %d, want 1", g.NumChannels())
	}
}

func TestCompleteShape(t *testing.T) {
	g := Complete(5, 1)
	if g.NumChannels() != 10 {
		t.Fatalf("NumChannels = %d, want 10", g.NumChannels())
	}
	d, conn := g.Diameter()
	if d != 1 || !conn {
		t.Fatalf("Diameter = (%d,%v), want (1,true)", d, conn)
	}
}

func TestWheelShape(t *testing.T) {
	g := Wheel(6, 1)
	if g.NumNodes() != 7 {
		t.Fatalf("NumNodes = %d, want 7", g.NumNodes())
	}
	// Hub connects to all 6 rim nodes; rim nodes have hub + 2 rim links.
	if g.InDegree(0) != 6 {
		t.Fatalf("hub degree = %d, want 6", g.InDegree(0))
	}
	for v := 1; v <= 6; v++ {
		if g.InDegree(NodeID(v)) != 3 {
			t.Fatalf("rim node %d degree = %d, want 3", v, g.InDegree(NodeID(v)))
		}
	}
}

func TestErdosRenyiExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	empty := ErdosRenyi(6, 0, 1, rng)
	if empty.NumEdges() != 0 {
		t.Fatalf("ER(p=0) edges = %d, want 0", empty.NumEdges())
	}
	full := ErdosRenyi(6, 1, 1, rng)
	if full.NumChannels() != 15 {
		t.Fatalf("ER(p=1) channels = %d, want 15", full.NumChannels())
	}
}

func TestErdosRenyiDeterministicPerSeed(t *testing.T) {
	a := ErdosRenyi(10, 0.4, 1, rand.New(rand.NewSource(5)))
	b := ErdosRenyi(10, 0.4, 1, rand.New(rand.NewSource(5)))
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("same seed produced different graphs: %d vs %d edges", a.NumEdges(), b.NumEdges())
	}
}

func TestBarabasiAlbertShape(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const (
		n = 30
		m = 2
	)
	g := BarabasiAlbert(n, m, 1, rng)
	if g.NumNodes() != n {
		t.Fatalf("NumNodes = %d, want %d", g.NumNodes(), n)
	}
	// Initial clique has m+1 choose 2 channels; each later node adds m.
	wantChannels := (m+1)*m/2 + (n-m-1)*m
	if g.NumChannels() != wantChannels {
		t.Fatalf("NumChannels = %d, want %d", g.NumChannels(), wantChannels)
	}
	if !g.StronglyConnected() {
		t.Fatal("BA graph must be connected")
	}
}

func TestBarabasiAlbertClampsParameters(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := BarabasiAlbert(1, 0, 1, rng) // clamps to m=1, n=2
	if g.NumNodes() < 2 {
		t.Fatalf("NumNodes = %d, want ≥ 2", g.NumNodes())
	}
}

func TestConnectedErdosRenyiAlwaysConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		g := ConnectedErdosRenyi(8, 0.15, 1, rng, 5)
		if !g.StronglyConnected() {
			t.Fatalf("trial %d: graph not strongly connected", trial)
		}
	}
}

func TestChannelSymmetryProperty(t *testing.T) {
	// Property: in every generated topology, directed edges come in
	// symmetric pairs — HasEdgeBetween(a,b) ⇔ HasEdgeBetween(b,a).
	check := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%20) + 3
		rng := rand.New(rand.NewSource(seed))
		graphs := []*Graph{
			Star(n, 1), Path(n, 1), Circle(n, 1),
			ErdosRenyi(n, 0.3, 1, rng),
			BarabasiAlbert(n, 2, 1, rng),
		}
		for _, g := range graphs {
			for a := 0; a < g.NumNodes(); a++ {
				for b := 0; b < g.NumNodes(); b++ {
					if g.HasEdgeBetween(NodeID(a), NodeID(b)) != g.HasEdgeBetween(NodeID(b), NodeID(a)) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
