package graph

import (
	"math/rand"
	"testing"
)

// joinAggregates computes the through-u aggregates of a peer multiset the
// way the evaluation engine's joinStats defines them, straight off the
// current AllPairs structure. peers maps peer → channel multiplicity.
func joinAggregates(ap, apT *AllPairs, peers map[NodeID]int) (inDist []uint16, inSigma []float64, outDist []uint16, outSigma []float64) {
	n := ap.N
	inDist = make([]uint16, n)
	inSigma = make([]float64, n)
	outDist = make([]uint16, n)
	outSigma = make([]float64, n)
	for x := 0; x < n; x++ {
		inDist[x] = Inf16
		outDist[x] = Inf16
		for v, mult := range peers {
			if d := ap.Dist[x*ap.Stride+int(v)]; d != Inf16 {
				switch {
				case inDist[x] == Inf16 || d < inDist[x]:
					inDist[x] = d
					inSigma[x] = float64(mult) * ap.Sigma[x*ap.Stride+int(v)]
				case d == inDist[x]:
					inSigma[x] += float64(mult) * ap.Sigma[x*ap.Stride+int(v)]
				}
			}
			if d := apT.Dist[x*apT.Stride+int(v)]; d != Inf16 {
				switch {
				case outDist[x] == Inf16 || d < outDist[x]:
					outDist[x] = d
					outSigma[x] = float64(mult) * apT.Sigma[x*apT.Stride+int(v)]
				case d == outDist[x]:
					outSigma[x] += float64(mult) * apT.Sigma[x*apT.Stride+int(v)]
				}
			}
		}
	}
	return inDist, inSigma, outDist, outSigma
}

// requireAllPairsEqual asserts ap matches a freshly BFS'd structure of g
// bit for bit on the live region.
func requireAllPairsEqual(t *testing.T, tag string, g *Graph, ap, apT *AllPairs) {
	t.Helper()
	want := g.AllPairsBFS()
	wantT := want.Transposed()
	if ap.N != want.N || apT.N != want.N {
		t.Fatalf("%s: N = %d/%d, want %d", tag, ap.N, apT.N, want.N)
	}
	for s := 0; s < want.N; s++ {
		for r := 0; r < want.N; r++ {
			if ap.DistAt(NodeID(s), NodeID(r)) != want.DistAt(NodeID(s), NodeID(r)) {
				t.Fatalf("%s: dist[%d][%d] = %d, want %d",
					tag, s, r, ap.DistAt(NodeID(s), NodeID(r)), want.DistAt(NodeID(s), NodeID(r)))
			}
			if ap.SigmaAt(NodeID(s), NodeID(r)) != want.SigmaAt(NodeID(s), NodeID(r)) {
				t.Fatalf("%s: sigma[%d][%d] = %v, want %v",
					tag, s, r, ap.SigmaAt(NodeID(s), NodeID(r)), want.SigmaAt(NodeID(s), NodeID(r)))
			}
			if apT.DistAt(NodeID(s), NodeID(r)) != wantT.DistAt(NodeID(s), NodeID(r)) ||
				apT.SigmaAt(NodeID(s), NodeID(r)) != wantT.SigmaAt(NodeID(s), NodeID(r)) {
				t.Fatalf("%s: transpose mismatch at [%d][%d]", tag, s, r)
			}
		}
	}
}

// TestExtendWithNodeMatchesRebuild grows random graphs one arrival at a
// time through the incremental extension and checks the structure stays
// bit-identical to a from-scratch BFS after every commit — including
// multi-channel strategies (parallel edges), empty strategies (isolated
// arrivals), and arrivals onto a disconnected substrate.
func TestExtendWithNodeMatchesRebuild(t *testing.T) {
	for _, start := range []struct {
		name string
		g    *Graph
	}{
		{"empty", New(0)},
		{"singleton", New(1)},
		{"path", Path(5, 1)},
		{"sparse-er", ErdosRenyi(8, 0.18, 1, rand.New(rand.NewSource(3)))}, // usually disconnected
		{"ba", BarabasiAlbert(10, 2, 1, rand.New(rand.NewSource(4)))},
	} {
		t.Run(start.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			g := start.g.Clone()
			ap := g.AllPairsBFS()
			apT := ap.Transposed()
			for arrival := 0; arrival < 14; arrival++ {
				n := g.NumNodes()
				peers := map[NodeID]int{}
				if n > 0 {
					for c := rng.Intn(4); c > 0; c-- { // 0..3 channels, repeats allowed
						peers[NodeID(rng.Intn(n))]++
					}
				}
				inDist, inSigma, outDist, outSigma := joinAggregates(ap, apT, peers)
				u := g.AddNode()
				for v, mult := range peers {
					for i := 0; i < mult; i++ {
						mustChannel(g, u, v, 1, 1)
					}
				}
				ExtendWithNode(ap, apT, int(u), inDist, inSigma, outDist, outSigma)
				requireAllPairsEqual(t, start.name, g, ap, apT)
			}
		})
	}
}

// TestExtendWithNodeReattach exercises the rewiring path: close every
// channel of an existing node, rebuild, then fold a fresh channel set for
// the same identifier back in incrementally.
func TestExtendWithNodeReattach(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := BarabasiAlbert(12, 2, 1, rng)
	for round := 0; round < 8; round++ {
		v := NodeID(rng.Intn(g.NumNodes()))
		for _, w := range g.Neighbors(v) {
			for g.HasEdgeBetween(v, w) {
				if err := g.RemoveChannel(v, w); err != nil {
					t.Fatalf("RemoveChannel(%d,%d): %v", v, w, err)
				}
			}
		}
		// Deletions invalidate incremental maintenance: rebuild, as the
		// growth engine does, then re-attach incrementally.
		ap := g.AllPairsBFS()
		apT := ap.Transposed()
		peers := map[NodeID]int{}
		for c := 1 + rng.Intn(3); c > 0; c-- {
			w := NodeID(rng.Intn(g.NumNodes()))
			if w != v {
				peers[w]++
			}
		}
		inDist, inSigma, outDist, outSigma := joinAggregates(ap, apT, peers)
		for w, mult := range peers {
			for i := 0; i < mult; i++ {
				mustChannel(g, v, w, 1, 1)
			}
		}
		ExtendWithNode(ap, apT, int(v), inDist, inSigma, outDist, outSigma)
		requireAllPairsEqual(t, "reattach", g, ap, apT)
	}
}

func TestReserveKeepsContents(t *testing.T) {
	g := BarabasiAlbert(9, 2, 1, rand.New(rand.NewSource(5)))
	ap := g.AllPairsBFS()
	apT := ap.Transposed()
	ap.Reserve(40)
	apT.Reserve(40)
	if ap.Stride != 40 || ap.N != 9 {
		t.Fatalf("Reserve: N=%d Stride=%d, want 9/40", ap.N, ap.Stride)
	}
	requireAllPairsEqual(t, "reserved", g, ap, apT)
	before := ap.Stride
	ap.Reserve(10) // never shrinks
	if ap.Stride != before {
		t.Fatalf("Reserve shrank stride to %d", ap.Stride)
	}
}
