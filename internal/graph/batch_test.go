package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

// randomPeerSets draws k peer sets over the first n nodes: ascending
// distinct peers with multiplicities 1-2, occasionally empty (isolated
// cohort members).
func randomPeerSets(rng *rand.Rand, n, k int) []PeerSet {
	sets := make([]PeerSet, k)
	for j := range sets {
		if n == 0 || rng.Intn(8) == 0 {
			continue // empty strategy: the joiner stays isolated
		}
		picked := map[int]float64{}
		for c := 1 + rng.Intn(3); c > 0; c-- {
			picked[rng.Intn(n)] += 1 + float64(rng.Intn(2))
		}
		set := PeerSet{}
		for v := 0; v < n; v++ {
			if m, ok := picked[v]; ok {
				set.Peers = append(set.Peers, NodeID(v))
				set.Mult = append(set.Mult, m)
			}
		}
		sets[j] = set
	}
	return sets
}

// applySequential folds the sets one at a time through ExtendWithNode,
// recomputing the aggregates between folds — the reference the batched
// fold must reproduce bit for bit.
func applySequential(ap, apT *AllPairs, sets []PeerSet) {
	for _, set := range sets {
		peers := map[NodeID]int{}
		for i, v := range set.Peers {
			peers[v] = int(set.Mult[i])
		}
		inDist, inSigma, outDist, outSigma := joinAggregates(ap, apT, peers)
		ExtendWithNode(ap, apT, ap.N, inDist, inSigma, outDist, outSigma)
	}
}

// clonePairs deep-copies a structure.
func clonePairs(ap *AllPairs) *AllPairs {
	return &AllPairs{
		N:      ap.N,
		Stride: ap.Stride,
		Dist:   append([]uint16(nil), ap.Dist...),
		Sigma:  append([]float64(nil), ap.Sigma...),
	}
}

// requirePairsIdentical asserts two structures agree bit for bit on the
// live region (strides may differ).
func requirePairsIdentical(t *testing.T, tag string, got, want, gotT, wantT *AllPairs) {
	t.Helper()
	if got.N != want.N || gotT.N != wantT.N {
		t.Fatalf("%s: N = %d/%d, want %d/%d", tag, got.N, gotT.N, want.N, wantT.N)
	}
	for s := 0; s < want.N; s++ {
		gd, wd := got.DistRow(s), want.DistRow(s)
		gs, ws := got.SigmaRow(s), want.SigmaRow(s)
		gdT, wdT := gotT.DistRow(s), wantT.DistRow(s)
		gsT, wsT := gotT.SigmaRow(s), wantT.SigmaRow(s)
		for r := 0; r < want.N; r++ {
			if gd[r] != wd[r] || gs[r] != ws[r] {
				t.Fatalf("%s: cell [%d][%d] = (%d, %v), want (%d, %v)",
					tag, s, r, gd[r], gs[r], wd[r], ws[r])
			}
			if gdT[r] != wdT[r] || gsT[r] != wsT[r] {
				t.Fatalf("%s: transposed cell [%d][%d] = (%d, %v), want (%d, %v)",
					tag, s, r, gdT[r], gsT[r], wdT[r], wsT[r])
			}
		}
	}
}

// TestExtendWithNodesMatchesSequential pins the batched fold to the
// sequential one on random substrates — including disconnected seeds,
// empty strategies, multi-channel peers, batches spanning multiple
// chunks, and every worker setting — bit for bit in both planes.
func TestExtendWithNodesMatchesSequential(t *testing.T) {
	for _, tc := range []struct {
		name    string
		seed    *Graph
		batch   int
		workers int
	}{
		{"empty-seed", New(0), 12, 1},
		{"singleton", New(1), 9, 1},
		{"path", Path(6, 1), 17, 2},
		{"sparse-er", ErdosRenyi(10, 0.15, 1, rand.New(rand.NewSource(3))), 23, 3},
		{"ba", BarabasiAlbert(12, 2, 1, rand.New(rand.NewSource(4))), 40, 4},
		{"ba-multichunk", BarabasiAlbert(14, 2, 1, rand.New(rand.NewSource(5))), 2*extendChunk + 7, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(99))
			n := tc.seed.NumNodes()
			sets := randomPeerSets(rng, n, tc.batch)

			apSeq := tc.seed.AllPairsBFS()
			apSeqT := apSeq.Transposed()
			applySequential(apSeq, apSeqT, sets)

			apBat := tc.seed.AllPairsBFS()
			apBatT := apBat.Transposed()
			ExtendWithNodes(apBat, apBatT, sets, tc.workers, nil)

			requirePairsIdentical(t, tc.name, apBat, apSeq, apBatT, apSeqT)

			// And both must equal a from-scratch BFS of the grown graph.
			g := tc.seed.Clone()
			for _, set := range sets {
				u := g.AddNode()
				for i, v := range set.Peers {
					for c := 0; c < int(set.Mult[i]); c++ {
						mustChannel(g, u, v, 1, 1)
					}
				}
			}
			requireAllPairsEqual(t, tc.name+"/rebuild", g, apBat, apBatT)
		})
	}
}

// TestExtendWithNodesWorkerInvariance pins the fused fold across worker
// counts: the row shards must compose to the identical structure.
func TestExtendWithNodesWorkerInvariance(t *testing.T) {
	seed := BarabasiAlbert(16, 2, 1, rand.New(rand.NewSource(8)))
	sets := randomPeerSets(rand.New(rand.NewSource(21)), seed.NumNodes(), extendChunk+9)
	var ref, refT *AllPairs
	for _, workers := range []int{1, 2, 3, 8} {
		ap := seed.AllPairsBFS()
		apT := ap.Transposed()
		ExtendWithNodes(ap, apT, sets, workers, &ExtendScratch{})
		if ref == nil {
			ref, refT = ap, apT
			continue
		}
		requirePairsIdentical(t, fmt.Sprintf("workers=%d", workers), ap, ref, apT, refT)
	}
}

// TestExtendWithNodesValidation pins the contract panics: peers must
// predate the batch and arrive strictly ascending with multiplicities.
func TestExtendWithNodesValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		set  PeerSet
	}{
		{"peer-in-batch", PeerSet{Peers: []NodeID{5}, Mult: []float64{1}}},
		{"unsorted", PeerSet{Peers: []NodeID{2, 1}, Mult: []float64{1, 1}}},
		{"duplicate", PeerSet{Peers: []NodeID{1, 1}, Mult: []float64{1, 1}}},
		{"length-mismatch", PeerSet{Peers: []NodeID{1}, Mult: nil}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := Path(5, 1)
			ap := g.AllPairsBFS()
			apT := ap.Transposed()
			defer func() {
				if recover() == nil {
					t.Fatalf("ExtendWithNodes accepted %s", tc.name)
				}
			}()
			ExtendWithNodes(ap, apT, []PeerSet{tc.set}, 1, nil)
		})
	}
}

// TestParallelRebuildMatchesSerial pins AllPairsBFSParallel (and the
// sharded transpose) to the serial build bit for bit at several worker
// counts.
func TestParallelRebuildMatchesSerial(t *testing.T) {
	for _, build := range []struct {
		name string
		g    *Graph
	}{
		{"ba", BarabasiAlbert(40, 2, 1, rand.New(rand.NewSource(1)))},
		{"sparse-er", ErdosRenyi(30, 0.1, 1, rand.New(rand.NewSource(2)))},
		{"empty", New(0)},
		{"isolated", New(7)},
	} {
		t.Run(build.name, func(t *testing.T) {
			want := build.g.AllPairsBFS()
			wantT := want.Transposed()
			for _, workers := range []int{2, 3, 8, 0} {
				got := build.g.AllPairsBFSParallel(workers)
				gotT := got.TransposedParallel(workers)
				requirePairsIdentical(t, fmt.Sprintf("workers=%d", workers), got, want, gotT, wantT)
			}
		})
	}
}
