package graph

// PairWeight assigns a weight to an ordered node pair (s, r). In the
// paper's model (§II-B, eq. 2) the weight of a pair is the probability
// that s transacts with r, optionally scaled by s's transaction rate, so
// that the weighted edge betweenness of e equals pe and λe = N·pe.
//
// A nil PairWeight means uniform weight 1 for every ordered pair with
// s ≠ r, which recovers the textbook betweenness centrality definition.
type PairWeight func(s, r NodeID) float64

// EdgeBetweenness computes, for every live directed edge e, the weighted
// edge betweenness centrality
//
//	EBC(e) = Σ_{s≠r, m(s,r)>0}  w(s,r) · me(s,r)/m(s,r)
//
// where me(s,r) counts shortest s→r paths through e and m(s,r) counts all
// shortest s→r paths (§II-B). The result is indexed by EdgeID; entries for
// dead edges are zero. The implementation is Brandes' algorithm with
// endpoint weights, O(n·(n+m)).
func (g *Graph) EdgeBetweenness(w PairWeight) []float64 {
	bc := make([]float64, g.MaxEdgeID())
	n := g.NumNodes()
	for s := 0; s < n; s++ {
		g.accumulateFromSource(NodeID(s), w, bc, nil)
	}
	return bc
}

// NodeBetweenness computes, for every node v, the weighted transit
// betweenness
//
//	NBC(v) = Σ_{s≠r, s≠v, r≠v, m(s,r)>0}  w(s,r) · mv(s,r)/m(s,r)
//
// where mv counts shortest s→r paths with v as an interior node. This is
// the quantity that drives the expected revenue of §IV (assumption 1):
// with w(s,r) = N_s·p_trans(s,r), NBC(v)·favg is E^rev_v.
func (g *Graph) NodeBetweenness(w PairWeight) []float64 {
	bc := make([]float64, g.NumNodes())
	n := g.NumNodes()
	for s := 0; s < n; s++ {
		g.accumulateFromSource(NodeID(s), w, nil, bc)
	}
	return bc
}

// Betweenness computes edge and node weighted betweenness in one pass.
func (g *Graph) Betweenness(w PairWeight) (edge []float64, node []float64) {
	edge = make([]float64, g.MaxEdgeID())
	node = make([]float64, g.NumNodes())
	n := g.NumNodes()
	for s := 0; s < n; s++ {
		g.accumulateFromSource(NodeID(s), w, edge, node)
	}
	return edge, node
}

// accumulateFromSource runs one Brandes iteration from source s, adding the
// source's contribution into edgeBC and/or nodeBC (either may be nil).
// The forward sweep walks the CSR adjacency (csr.go) — one contiguous
// int32 run per node instead of an EdgeID slice and an Edge struct per
// neighbor — in exactly the out-list order, so predecessor lists and
// every float accumulation are bit-identical to the slice-of-slice
// traversal.
func (g *Graph) accumulateFromSource(s NodeID, w PairWeight, edgeBC, nodeBC []float64) {
	n := g.NumNodes()
	c := g.ensureCSR()
	var (
		dist  = make([]int, n)
		sigma = make([]float64, n)
		delta = make([]float64, n)
		order = make([]NodeID, 0, n)
		queue = make([]NodeID, 0, n)
		// preds[v] holds the edge IDs (p,v) lying on shortest s→v paths.
		preds = make([][]EdgeID, n)
	)
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[s] = 0
	sigma[s] = 1
	queue = append(queue, s)
	relax := func(v, t NodeID, id EdgeID) {
		switch {
		case dist[t] == Unreachable:
			dist[t] = dist[v] + 1
			sigma[t] = sigma[v]
			preds[t] = append(preds[t], id)
			queue = append(queue, t)
		case dist[t] == dist[v]+1:
			sigma[t] += sigma[v]
			preds[t] = append(preds[t], id)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		if int(v) < c.nodes {
			for i := c.Offsets[v]; i < c.Offsets[v+1]; i++ {
				relax(v, NodeID(c.Neighbors[i]), EdgeID(c.EdgeIDs[i]))
			}
		}
		if int(v) < len(c.extra) {
			for _, e := range c.extra[v] {
				relax(v, e.to, e.id)
			}
		}
	}
	// Dependency accumulation in reverse BFS order.
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		weight := 0.0
		if v != s {
			weight = 1
			if w != nil {
				weight = w(s, v)
			}
		}
		for _, id := range preds[v] {
			p := g.edges[id].From
			share := sigma[p] / sigma[v] * (weight + delta[v])
			if edgeBC != nil {
				edgeBC[id] += share
			}
			delta[p] += share
		}
		if nodeBC != nil && v != s {
			// delta[v] aggregates contributions of pairs (s, r) with r
			// strictly beyond v, i.e. v interior — exactly mv(s,r)/m(s,r)
			// weighted.
			nodeBC[v] += delta[v]
		}
	}
}

// EdgeBetweennessNaive computes the same quantity as EdgeBetweenness by
// explicit enumeration of shortest paths. It is exponential in the worst
// case and exists only as a test oracle for small graphs.
func (g *Graph) EdgeBetweennessNaive(w PairWeight) []float64 {
	bc := make([]float64, g.MaxEdgeID())
	n := g.NumNodes()
	for s := 0; s < n; s++ {
		dist, sigma := g.BFSCounts(NodeID(s))
		for r := 0; r < n; r++ {
			if r == s || dist[r] == Unreachable {
				continue
			}
			weight := 1.0
			if w != nil {
				weight = w(NodeID(s), NodeID(r))
			}
			if weight == 0 {
				continue
			}
			counts := make(map[EdgeID]float64)
			g.countPathsThroughEdges(NodeID(s), NodeID(r), dist, counts)
			for id, me := range counts {
				bc[id] += weight * me / sigma[r]
			}
		}
	}
	return bc
}

// countPathsThroughEdges walks every shortest s→r path (via DFS over the
// shortest-path DAG) and increments counts[e] once per path containing e.
func (g *Graph) countPathsThroughEdges(s, r NodeID, dist []int, counts map[EdgeID]float64) {
	var path []EdgeID
	var walk func(v NodeID)
	walk = func(v NodeID) {
		if v == r {
			for _, id := range path {
				counts[id]++
			}
			return
		}
		for _, id := range g.out[v] {
			t := g.edges[id].To
			if dist[t] == dist[v]+1 && dist[r] >= dist[t] {
				path = append(path, id)
				walk(t)
				path = path[:len(path)-1]
			}
		}
	}
	walk(s)
}
