package graph

import (
	"math"
	"math/rand"
	"testing"
)

func TestBFSPath(t *testing.T) {
	g := Path(5, 1)
	dist := g.BFS(0)
	want := []int{0, 1, 2, 3, 4}
	for i, d := range want {
		if dist[i] != d {
			t.Fatalf("dist[%d] = %d, want %d", i, dist[i], d)
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := New(3)
	if _, err := g.AddEdge(0, 1, 1); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	dist := g.BFS(0)
	if dist[2] != Unreachable {
		t.Fatalf("dist[2] = %d, want Unreachable", dist[2])
	}
	// Directed edge: node 1 cannot reach node 0.
	dist = g.BFS(1)
	if dist[0] != Unreachable {
		t.Fatalf("reverse reachability through a one-way edge: dist = %d", dist[0])
	}
}

func TestBFSCountsDiamond(t *testing.T) {
	// 0→1→3 and 0→2→3: two shortest paths 0→3.
	g := New(4)
	for _, e := range [][2]NodeID{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		if _, err := g.AddEdge(e[0], e[1], 1); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	dist, sigma := g.BFSCounts(0)
	if dist[3] != 2 {
		t.Fatalf("dist[3] = %d, want 2", dist[3])
	}
	if sigma[3] != 2 {
		t.Fatalf("sigma[3] = %v, want 2", sigma[3])
	}
}

func TestBFSCountsParallelEdges(t *testing.T) {
	// Two parallel channels between 0 and 1 double the path count,
	// matching the multigraph action set of §II-C.
	g := New(2)
	mustChannel(g, 0, 1, 1, 1)
	mustChannel(g, 0, 1, 1, 1)
	_, sigma := g.BFSCounts(0)
	if sigma[1] != 2 {
		t.Fatalf("sigma[1] = %v, want 2 for parallel channels", sigma[1])
	}
}

func TestBFSCountsMissingSource(t *testing.T) {
	g := New(2)
	dist, sigma := g.BFSCounts(9)
	for i := range dist {
		if dist[i] != Unreachable || sigma[i] != 0 {
			t.Fatalf("missing source produced dist=%d sigma=%v at %d", dist[i], sigma[i], i)
		}
	}
}

func TestAllPairsBFSMatchesSingleSource(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := ErdosRenyi(12, 0.3, 1, rng)
	ap := g.AllPairsBFS()
	apT := ap.Transposed()
	for s := 0; s < g.NumNodes(); s++ {
		dist, sigma := g.BFSCounts(NodeID(s))
		distRow, sigmaRow := ap.DistRow(s), ap.SigmaRow(s)
		for tgt := 0; tgt < g.NumNodes(); tgt++ {
			if ap.DistAt(NodeID(s), NodeID(tgt)) != dist[tgt] {
				t.Fatalf("AllPairs dist[%d][%d] = %d, want %d", s, tgt, ap.DistAt(NodeID(s), NodeID(tgt)), dist[tgt])
			}
			if ap.SigmaAt(NodeID(s), NodeID(tgt)) != sigma[tgt] {
				t.Fatalf("AllPairs sigma[%d][%d] = %v, want %v", s, tgt, ap.SigmaAt(NodeID(s), NodeID(tgt)), sigma[tgt])
			}
			if int(distRow[tgt]) != dist[tgt] || sigmaRow[tgt] != sigma[tgt] {
				t.Fatalf("row accessors diverge at [%d][%d]", s, tgt)
			}
			if apT.DistAt(NodeID(tgt), NodeID(s)) != dist[tgt] || apT.SigmaAt(NodeID(tgt), NodeID(s)) != sigma[tgt] {
				t.Fatalf("transposed accessors diverge at [%d][%d]", s, tgt)
			}
		}
	}
}

func TestDiameter(t *testing.T) {
	tests := []struct {
		name     string
		g        *Graph
		wantDiam int
		wantConn bool
	}{
		{name: "path5", g: Path(5, 1), wantDiam: 4, wantConn: true},
		{name: "circle6", g: Circle(6, 1), wantDiam: 3, wantConn: true},
		{name: "star4", g: Star(4, 1), wantDiam: 2, wantConn: true},
		{name: "complete5", g: Complete(5, 1), wantDiam: 1, wantConn: true},
		{name: "disconnected", g: New(3), wantDiam: 0, wantConn: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d, conn := tt.g.Diameter()
			if d != tt.wantDiam || conn != tt.wantConn {
				t.Fatalf("Diameter = (%d,%v), want (%d,%v)", d, conn, tt.wantDiam, tt.wantConn)
			}
		})
	}
}

func TestEccentricity(t *testing.T) {
	g := Path(5, 1)
	ecc, ok := g.Eccentricity(0)
	if !ok || ecc != 4 {
		t.Fatalf("Eccentricity(0) = (%d,%v), want (4,true)", ecc, ok)
	}
	ecc, ok = g.Eccentricity(2)
	if !ok || ecc != 2 {
		t.Fatalf("Eccentricity(2) = (%d,%v), want (2,true)", ecc, ok)
	}
	if _, ok := g.Eccentricity(99); ok {
		t.Fatal("Eccentricity of missing node reported reachable")
	}
}

func TestHopDistance(t *testing.T) {
	g := Circle(6, 1)
	if d := g.HopDistance(0, 3); d != 3 {
		t.Fatalf("HopDistance(0,3) = %d, want 3", d)
	}
	if d := g.HopDistance(0, 99); d != Unreachable {
		t.Fatalf("HopDistance to missing node = %d, want Unreachable", d)
	}
}

func TestLongestShortestPathThroughCenter(t *testing.T) {
	// In a star every leaf-to-leaf shortest path (length 2) passes through
	// the center; the longest shortest path through a leaf is the leaf's
	// own eccentricity paths.
	g := Star(5, 1)
	if got := g.LongestShortestPathThrough(0); got != 2 {
		t.Fatalf("through center = %d, want 2", got)
	}
	if got := g.LongestShortestPathThrough(1); got != 2 {
		t.Fatalf("through leaf = %d, want 2", got)
	}
	// Middle of a path lies on the full-length path.
	p := Path(7, 1)
	if got := p.LongestShortestPathThrough(3); got != 6 {
		t.Fatalf("through middle of path = %d, want 6", got)
	}
	if got := p.LongestShortestPathThrough(0); got != 6 {
		t.Fatalf("through endpoint of path = %d, want 6", got)
	}
}

func TestStronglyConnected(t *testing.T) {
	if !Circle(4, 1).StronglyConnected() {
		t.Fatal("circle not strongly connected")
	}
	g := New(2)
	if _, err := g.AddEdge(0, 1, 1); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if g.StronglyConnected() {
		t.Fatal("one-way pair reported strongly connected")
	}
}

func TestFiniteOrInf(t *testing.T) {
	if got := FiniteOrInf(3); got != 3 {
		t.Fatalf("FiniteOrInf(3) = %v", got)
	}
	if got := FiniteOrInf(Unreachable); !math.IsInf(got, 1) {
		t.Fatalf("FiniteOrInf(Unreachable) = %v, want +Inf", got)
	}
}
