package graph

import "testing"

func TestReduceFiltersByCapacity(t *testing.T) {
	g := New(3)
	bigAB, smallBA, err := g.AddChannel(0, 1, 10, 2)
	if err != nil {
		t.Fatalf("AddChannel: %v", err)
	}
	if _, _, err := g.AddChannel(1, 2, 5, 5); err != nil {
		t.Fatalf("AddChannel: %v", err)
	}
	r := g.Reduce(5)
	if _, ok := r.Edge(bigAB); !ok {
		t.Fatal("capacity-10 edge missing from Reduce(5)")
	}
	if _, ok := r.Edge(smallBA); ok {
		t.Fatal("capacity-2 edge survived Reduce(5)")
	}
	if r.NumEdges() != 3 {
		t.Fatalf("reduced NumEdges = %d, want 3", r.NumEdges())
	}
	// The original graph is untouched.
	if g.NumEdges() != 4 {
		t.Fatalf("original NumEdges = %d, want 4", g.NumEdges())
	}
}

func TestReduceAffectsRouting(t *testing.T) {
	// Figure 1 semantics at the topology level: after reducing by a
	// payment too large for the depleted direction, that direction is
	// unusable while the opposite one still routes.
	g := New(2)
	if _, _, err := g.AddChannel(0, 1, 5, 12); err != nil {
		t.Fatalf("AddChannel: %v", err)
	}
	r := g.Reduce(6)
	if d := r.HopDistance(0, 1); d != Unreachable {
		t.Fatalf("0→1 should be unroutable for amount 6, got distance %d", d)
	}
	if d := r.HopDistance(1, 0); d != 1 {
		t.Fatalf("1→0 should remain routable, got distance %d", d)
	}
}

func TestReduceZeroKeepsAll(t *testing.T) {
	g := Complete(4, 3)
	r := g.Reduce(0)
	if r.NumEdges() != g.NumEdges() {
		t.Fatalf("Reduce(0) dropped edges: %d vs %d", r.NumEdges(), g.NumEdges())
	}
}

func TestWithoutNodeIsolates(t *testing.T) {
	g := Star(4, 1)
	r := g.WithoutNode(0)
	if r.NumNodes() != g.NumNodes() {
		t.Fatalf("WithoutNode changed node count: %d vs %d", r.NumNodes(), g.NumNodes())
	}
	if r.NumEdges() != 0 {
		t.Fatalf("star minus center should have no edges, got %d", r.NumEdges())
	}
	// Removing a leaf keeps the rest of the star intact.
	r = g.WithoutNode(1)
	if r.NumChannels() != 3 {
		t.Fatalf("star minus one leaf channels = %d, want 3", r.NumChannels())
	}
	if r.InDegree(1) != 0 || r.OutDegree(1) != 0 {
		t.Fatal("removed node still has incident edges")
	}
}

func TestWithoutNodePreservesIdentifiers(t *testing.T) {
	g := Path(4, 1)
	ids := g.EdgesBetween(2, 3)
	r := g.WithoutNode(0)
	if len(ids) != 1 {
		t.Fatalf("expected single 2→3 edge, got %d", len(ids))
	}
	e, ok := r.Edge(ids[0])
	if !ok || e.From != 2 || e.To != 3 {
		t.Fatalf("edge identifiers not preserved: %+v ok=%v", e, ok)
	}
}
