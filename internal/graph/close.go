package graph

import "github.com/lightning-creation-games/lcg/internal/par"

// This file is the decremental all-pairs maintenance used by the
// network-churn path: when departing nodes are folded out of the
// substrate, the AllPairs structure is repaired in place instead of the
// O(n·(n+m)) re-BFS a full rebuild pays (extend.go/batch.go fold
// arrivals in; this file folds departures out).
//
// Deletions cannot run the arrival fold backwards — removing arcs can
// only destroy shortest paths, and the structure does not record which
// pairs routed through a given node — so the fold is a lazy
// invalidate-and-repair:
//
//  1. Every removed arc is incident to a departed node v, so a source
//     row x can change only if some old shortest x→y path passed
//     *through* v — which holds exactly when the old planes satisfy
//     d(x,v) + d(v,y) == d(x,y) for some surviving target y. The
//     departed rows and columns are saved before anything is touched,
//     and that equality is then a streaming scan of the old distance
//     plane: O(n·|V|) per source row, no graph traversal.
//  2. Unaffected rows keep both their distances and their path counts:
//     with no shortest path through any departed node, every old
//     shortest path survives the removals, no removal can create a
//     shorter one, and the surviving path set is exactly the old one.
//     Path counts are integer sums exact in float64, so "same path set"
//     is bit-identity, not approximate equality.
//  3. An affected row whose shortest paths crossed exactly one departed
//     node v usually keeps all its distances: a pair's distance grows
//     only when v carried *all* of its shortest paths. For every other
//     colliding pair the surviving path set is the old one minus the
//     paths through v, so the count repairs by the Brandes identity
//     σ'(x,y) = σ(x,y) − σ(x,v)·σ(v,y) — an O(n) subtraction sweep
//     instead of a graph traversal. Counts are integers exact in
//     float64 (the same contract the arrival fold's products rely on),
//     so the subtracted value is the same integer a rebuild would sum,
//     bit for bit.
//  4. The pairs that did exhaust — v carried every shortest path, so
//     the distance grew — form a small set E per row, and their new
//     values follow from the rest of the row, which is already correct:
//     d'(x,y) = 1 + min over live in-arcs (w,y) of d'(x,w), the BFS
//     identity on the post-departure graph. A Dijkstra-style relaxation
//     over just E settles them in O(|E|·(|E| + Σdeg)) — no traversal of
//     the unaffected bulk — and recounts σ from the settled
//     predecessors, again exact integer sums.
//  5. The residue — rows where |E| outgrows the relaxation's win over a
//     plain BFS, or that crossed two or more departed nodes (paths can
//     thread several departures, which subtraction would double-count)
//     — is repaired by a fresh per-source BFS, the same bfsCountsCSR
//     kernel the full rebuild runs, so a repaired row is bit-identical
//     to its rebuilt counterpart by construction.
//
// The departed rows and columns themselves are not repaired but written
// directly: a fully departed node is isolated, so its row and column
// are Inf16 everywhere except the self pair. Source rows are
// independent, so detection and repair shard across the bounded worker
// pool exactly like the parallel rebuild — bit-identical at any worker
// count, enforced by TestFoldCloseMatchesRebuild and the fuzz
// differential on top of it.
//
// Cost. Detection streams the distance plane once per departed node
// (O(n²·|V|) int32 compares); count-only rows repair inside that sweep
// (O(n) subtractions each); exhausted pairs settle by the E-relaxation;
// only the residue pays a BFS (O(R·(n+m))). A full rebuild pays the BFS
// for every source. Under preferential-attachment churn the residue is
// small: a single departure strands more than maxCloseRelax pairs of a
// row only when a genuine hub leaves, and a leaf node is interior to no
// shortest path at all, so only its own column changes and R is 0.

// CloseScratch holds the reusable buffers of FoldClose. The zero value
// is ready; after the first call at a given size, subsequent calls
// allocate nothing (the repair BFS may still trigger the graph's O(n+m)
// CSR re-bake, which reuses its own buffers).
type CloseScratch struct {
	// colD[k*n+x] saves departed node k's old incoming column d(x, v_k);
	// row32[k*n+y] its old outgoing row d(v_k, y), promoted to fold
	// arithmetic once so the detection scan is a pure int32 compare.
	// colSig and rowSig mirror them with the old path counts σ(x, v_k)
	// and σ(v_k, y), the factors of the subtraction repair.
	colD   []uint16
	row32  []int32
	colSig []float64
	rowSig []float64
	// gone marks the departed identifiers; their rows are direct-written
	// rather than detected.
	gone []bool
	// blocks holds one mutable repair scratch per worker block; repairs
	// the per-block repaired-row counts (index-addressed so the parallel
	// shards never share an accumulator).
	blocks  []closeBlock
	repairs []int

	// pool is the cached worker pool (keyed by the requested bound, so
	// repeated calls reuse it).
	pool    *par.Pool
	poolFor int
}

// maxCloseRelax bounds the exhausted set the per-row relaxation absorbs.
// Beyond it the O(|E|·(|E| + Σdeg)) selection loop loses to the O(n+m)
// BFS the row would otherwise pay, so the row falls through — in
// practice only rows stranded by a departing hub cross the bound.
const maxCloseRelax = 32

// closeBlock is the mutable per-worker state of the sharded repair:
// the BFS scratch of the residue path, plus the exhausted-target list
// and its unsettled-marker plane for the relaxation path. mark is
// all-false between rows — each row sets only its own exhausted targets
// and the relaxation clears every one it settles.
type closeBlock struct {
	bfs  BFSScratch
	exh  []int32
	mark []bool
}

// reserve pre-sizes the scratch for k departed nodes over an n-node
// structure with the given resolved worker count, clearing the mask and
// the counters.
func (sc *CloseScratch) reserve(k, n, workers int) {
	need := k * n
	if cap(sc.colD) < need {
		size := 2 * need
		if c := 2 * cap(sc.colD); c > size {
			size = c
		}
		sc.colD = make([]uint16, size)
		sc.row32 = make([]int32, size)
		sc.colSig = make([]float64, size)
		sc.rowSig = make([]float64, size)
	}
	sc.colD = sc.colD[:need]
	sc.row32 = sc.row32[:need]
	sc.colSig = sc.colSig[:need]
	sc.rowSig = sc.rowSig[:need]
	if cap(sc.gone) < n {
		sc.gone = make([]bool, 2*n)
	}
	sc.gone = sc.gone[:n]
	for i := range sc.gone {
		sc.gone[i] = false
	}
	if len(sc.blocks) < workers {
		sc.blocks = append(sc.blocks, make([]closeBlock, workers-len(sc.blocks))...)
	}
	for b := range sc.blocks[:workers] {
		bl := &sc.blocks[b]
		if cap(bl.exh) < maxCloseRelax+1 {
			bl.exh = make([]int32, 0, maxCloseRelax+1)
		}
		if cap(bl.mark) < n {
			bl.mark = make([]bool, 2*n)
		}
		bl.mark = bl.mark[:n]
	}
	if len(sc.repairs) < workers {
		sc.repairs = append(sc.repairs, make([]int, workers-len(sc.repairs))...)
	}
	for b := range sc.repairs[:workers] {
		sc.repairs[b] = 0
	}
}

// FoldClose folds a batch of node departures into the forward structure
// ap and its transposed mirror apT in place. Every departed node must
// already be fully isolated in g — the caller closes the channels first
// and folds once per batch — and must have been connected state in the
// planes (the planes still describe the pre-departure graph). The result
// is bit-identical — distances, path counts, accumulation order — to a
// from-scratch rebuild of the post-departure graph, at any worker count
// (workers ≤ 0 selects all cores). sc may be shared across calls from
// one goroutine; nil allocates a throwaway. Returns the number of
// source rows repaired by BFS (the residue the subtraction sweep could
// not absorb), a sparsity measure the benchmarks report.
//
// A departed node that was never reachable folds for free: its saved
// row and column are all-Inf16, so no surviving row matches the
// detection equality and only the direct writes run.
func FoldClose(ap, apT *AllPairs, g *Graph, departed []NodeID, workers int, sc *CloseScratch) (repaired int) {
	n := ap.N
	if apT.N != n {
		panic("graph: FoldClose on mismatched structures")
	}
	if g.NumNodes() != n {
		panic("graph: FoldClose structure does not cover the graph")
	}
	if len(departed) == 0 {
		return 0
	}
	for _, v := range departed {
		if int(v) < 0 || int(v) >= n {
			panic("graph: FoldClose departed node out of range")
		}
		if g.OutDegree(v) != 0 || g.InDegree(v) != 0 {
			panic("graph: FoldClose departed node still has channels")
		}
	}
	if sc == nil {
		sc = &CloseScratch{}
	}
	if sc.pool == nil || sc.poolFor != workers {
		sc.pool = par.NewPool(workers)
		sc.poolFor = workers
	}
	k := len(departed)
	w := sc.pool.Workers()
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	sc.reserve(k, n, w)

	// Save the departed rows and columns while the planes still hold the
	// pre-departure values, and mark the identifiers.
	for ki, v := range departed {
		vi := int(v)
		sc.gone[vi] = true
		copy(sc.colD[ki*n:ki*n+n], apT.DistRow(vi))
		copy(sc.colSig[ki*n:ki*n+n], apT.SigmaRow(vi))
		copy(sc.rowSig[ki*n:ki*n+n], ap.SigmaRow(vi))
		row := ap.DistRow(vi)
		r32 := sc.row32[ki*n : ki*n+n]
		for y, d := range row {
			r32[y] = cell32(d)
		}
	}

	// Direct writes: a departed node is isolated, so its row and column
	// in both planes are Inf16/0 with the self pair 0/1. Done
	// sequentially before the sharded phase — the repair BFS rewrites
	// some of these cells with the same values, which is only benign
	// because these writes happen-before the fan-out. Clearing the
	// departed columns first also makes the detection scan skip departed
	// targets for free: a cleared cell is Inf16, which no finite
	// through-sum can equal.
	for _, v := range departed {
		vi := int(v)
		clearRow(ap, vi, n)
		clearRow(apT, vi, n)
		clearCol(ap, vi, n)
		clearCol(apT, vi, n)
	}
	for _, v := range departed {
		vi := int(v)
		ap.Dist[vi*ap.Stride+vi] = 0
		ap.Sigma[vi*ap.Stride+vi] = 1
		apT.Dist[vi*apT.Stride+vi] = 0
		apT.Sigma[vi*apT.Stride+vi] = 1
	}

	// Detection + repair, row-sharded. The CSR view is ensured before
	// the fan-out so workers never race on the cache build.
	c := g.ensureCSR()
	if w == 1 {
		// Inline fast path: no pool dispatch, no closure — the
		// steady-state single-threaded fold allocates nothing.
		sc.repairs[0] = sc.foldCloseRows(ap, apT, g, c, k, n, 0, n, &sc.blocks[0])
	} else {
		block := (n + w - 1) / w
		sc.pool.ForEachBlock(n, func(lo, hi int) {
			b := lo / block
			sc.repairs[b] = sc.foldCloseRows(ap, apT, g, c, k, n, lo, hi, &sc.blocks[b])
		})
	}
	for _, r := range sc.repairs[:w] {
		repaired += r
	}
	return repaired
}

// foldCloseRows runs detection and repair over the source rows [lo, hi):
// a row is affected when some old shortest path from it routed through a
// departed node. Rows that collide with exactly one departed node repair
// their counts by subtraction in place and settle their exhausted pairs
// by the E-relaxation; rows whose exhausted set outgrows maxCloseRelax
// or that collide with several departed nodes are re-derived by the
// rebuild's own BFS kernel. Returns the
// number of rows repaired by BFS. Workers write only their own rows of
// ap and their own columns of apT, so shards never overlap.
func (sc *CloseScratch) foldCloseRows(ap, apT *AllPairs, g *Graph, c *csrAdj, k, n, lo, hi int, bl *closeBlock) (repaired int) {
	sa, st := ap.Stride, apT.Stride
	for x := lo; x < hi; x++ {
		if sc.gone[x] {
			continue
		}
		rowD := ap.Dist[x*sa : x*sa+n]
		// Which departed nodes carried shortest paths from x? One
		// colliding target per departed node is enough to classify.
		hit, multi := -1, false
		for ki := 0; ki < k && !multi; ki++ {
			dxv := sc.colD[ki*n+x]
			if dxv == Inf16 {
				continue
			}
			base := int32(dxv)
			r32 := sc.row32[ki*n : ki*n+n]
			for y, d := range rowD {
				// Departed targets were cleared to Inf16 above, so they
				// can never satisfy the equality; y == x has d == 0
				// against a through-sum ≥ 2.
				if base+r32[y] == cell32(d) {
					multi = hit >= 0
					hit = ki
					break
				}
			}
		}
		if hit < 0 {
			continue
		}
		rowS := ap.Sigma[x*sa : x*sa+n]
		rebfs := multi
		if !rebfs {
			// Exactly one departed node v collides. A colliding pair's
			// distance survives unless v carried all of its shortest
			// paths, and its count drops by exactly the paths through v:
			// σ'(x,y) = σ(x,y) − σ(x,v)·σ(v,y). The subtraction is
			// applied optimistically; pairs that exhaust to zero lost
			// every path through v, so their distances grew — they are
			// collected and settled by the E-relaxation below, unless
			// the set outgrows maxCloseRelax and the row falls through
			// to the BFS, which rewrites every cell the sweep touched.
			base := int32(sc.colD[hit*n+x])
			r32 := sc.row32[hit*n : hit*n+n]
			sx := sc.colSig[hit*n+x]
			sig := sc.rowSig[hit*n : hit*n+n]
			exh := bl.exh[:0]
			for y, d := range rowD {
				if base+r32[y] == cell32(d) {
					s := rowS[y] - sx*sig[y]
					if s == 0 {
						if len(exh) == maxCloseRelax {
							rebfs = true
							break
						}
						exh = append(exh, int32(y))
						continue
					}
					rowS[y] = s
					apT.Sigma[y*st+x] = s
				}
			}
			if !rebfs && len(exh) > 0 {
				closeRelaxRow(g, apT, x, rowD, rowS, exh, bl.mark)
			}
		}
		if !rebfs {
			continue
		}
		g.bfsCountsCSR(c, NodeID(x), rowD, rowS, &bl.bfs)
		for y := 0; y < n; y++ {
			apT.Dist[y*st+x] = rowD[y]
			apT.Sigma[y*st+x] = rowS[y]
		}
		repaired++
	}
	return repaired
}

// closeRelaxRow settles the exhausted targets of source row x — the
// pairs that lost every shortest path to the single departed node — by
// Dijkstra-style relaxation over the live in-arcs. Every other cell of
// the row is already final, so each target obeys the BFS identity
// d'(x,y) = 1 + min over in-arcs (w,y) of d'(x,w); settling the minimum
// candidate first makes the scan sound even when exhausted targets
// chain through each other, and recounting σ as the per-arc sum over
// predecessors at d'−1 mirrors bfsCountsCSR arc for arc (exact integer
// sums, so the grouping does not matter). Targets with no finite
// candidate are cut off entirely and zero out, exactly as a fresh BFS
// would leave them. mark must be all-false on entry and is restored on
// return.
func closeRelaxRow(g *Graph, apT *AllPairs, x int, rowD []uint16, rowS []float64, exh []int32, mark []bool) {
	st := apT.Stride
	for _, y := range exh {
		mark[y] = true
	}
	for remaining := len(exh); remaining > 0; remaining-- {
		best, bestD := int32(-1), unreach32
		for _, y := range exh {
			if !mark[y] {
				continue
			}
			cand := unreach32
			for _, id := range g.in[y] {
				w := g.edges[id].From
				// An unsettled sibling still holds its stale pre-repair
				// cell and is no closer than the minimum candidate, so
				// it must not (and cannot) improve it.
				if dw := rowD[w]; dw != Inf16 && !mark[w] {
					if c := int32(dw) + 1; c < cand {
						cand = c
					}
				}
			}
			if cand < bestD {
				bestD, best = cand, y
			}
		}
		if best < 0 {
			// No unsettled target has a finite candidate: the rest of
			// the batch is unreachable in the post-departure graph.
			for _, y := range exh {
				if mark[y] {
					mark[y] = false
					rowD[y] = Inf16
					rowS[y] = 0
					apT.Dist[int(y)*st+x] = Inf16
					apT.Sigma[int(y)*st+x] = 0
				}
			}
			return
		}
		if bestD > maxDist32 {
			panic("graph: distance plane overflow (diameter exceeds the uint16 envelope)")
		}
		var s float64
		for _, id := range g.in[best] {
			// Unsettled siblings still hold stale pre-repair cells and
			// are provably not at bestD−1, so the mark excludes them;
			// settled ties sit at bestD and fail the distance test, and
			// Inf16 promotes past maxDist32 and can never match.
			if w := g.edges[id].From; !mark[w] && int32(rowD[w])+1 == bestD {
				s += rowS[w]
			}
		}
		mark[best] = false
		rowD[best] = uint16(bestD)
		rowS[best] = s
		apT.Dist[int(best)*st+x] = uint16(bestD)
		apT.Sigma[int(best)*st+x] = s
	}
}
