package graph

import (
	"errors"
	"math"
	"testing"
)

func TestNewGraphEmpty(t *testing.T) {
	g := New(3)
	if got := g.NumNodes(); got != 3 {
		t.Fatalf("NumNodes = %d, want 3", got)
	}
	if got := g.NumEdges(); got != 0 {
		t.Fatalf("NumEdges = %d, want 0", got)
	}
}

func TestNewNegativeClampsToZero(t *testing.T) {
	g := New(-5)
	if got := g.NumNodes(); got != 0 {
		t.Fatalf("NumNodes = %d, want 0", got)
	}
}

func TestAddNode(t *testing.T) {
	g := New(0)
	a := g.AddNode()
	b := g.AddNode()
	if a != 0 || b != 1 {
		t.Fatalf("AddNode ids = %d,%d, want 0,1", a, b)
	}
	if !g.HasNode(a) || !g.HasNode(b) || g.HasNode(2) {
		t.Fatal("HasNode inconsistent with AddNode")
	}
}

func TestAddEdge(t *testing.T) {
	g := New(2)
	id, err := g.AddEdge(0, 1, 5)
	if err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	e, ok := g.Edge(id)
	if !ok {
		t.Fatal("Edge not found after AddEdge")
	}
	if e.From != 0 || e.To != 1 || e.Capacity != 5 {
		t.Fatalf("Edge = %+v, want {From:0 To:1 Capacity:5}", e)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(2)
	tests := []struct {
		name     string
		from, to NodeID
		capacity float64
		wantErr  error
	}{
		{name: "from out of range", from: 5, to: 1, capacity: 1, wantErr: ErrNodeOutOfRange},
		{name: "to out of range", from: 0, to: 9, capacity: 1, wantErr: ErrNodeOutOfRange},
		{name: "negative node", from: -1, to: 1, capacity: 1, wantErr: ErrNodeOutOfRange},
		{name: "self loop", from: 1, to: 1, capacity: 1, wantErr: ErrSelfLoop},
		{name: "negative capacity", from: 0, to: 1, capacity: -2, wantErr: ErrNegativeValue},
		{name: "NaN capacity", from: 0, to: 1, capacity: math.NaN(), wantErr: ErrNonFiniteValue},
		{name: "+Inf capacity", from: 0, to: 1, capacity: math.Inf(1), wantErr: ErrNonFiniteValue},
		{name: "-Inf capacity", from: 0, to: 1, capacity: math.Inf(-1), wantErr: ErrNegativeValue},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := g.AddEdge(tt.from, tt.to, tt.capacity); !errors.Is(err, tt.wantErr) {
				t.Fatalf("AddEdge error = %v, want %v", err, tt.wantErr)
			}
		})
	}
	if g.NumEdges() != 0 {
		t.Fatalf("failed AddEdge mutated the graph: NumEdges = %d", g.NumEdges())
	}
}

func TestAddChannelCreatesBothDirections(t *testing.T) {
	g := New(2)
	ab, ba, err := g.AddChannel(0, 1, 10, 7)
	if err != nil {
		t.Fatalf("AddChannel: %v", err)
	}
	e1, _ := g.Edge(ab)
	e2, _ := g.Edge(ba)
	if e1.From != 0 || e1.To != 1 || e1.Capacity != 10 {
		t.Fatalf("forward edge = %+v", e1)
	}
	if e2.From != 1 || e2.To != 0 || e2.Capacity != 7 {
		t.Fatalf("reverse edge = %+v", e2)
	}
	if g.NumChannels() != 1 {
		t.Fatalf("NumChannels = %d, want 1", g.NumChannels())
	}
}

func TestAddChannelRejectsNonFinite(t *testing.T) {
	for _, capab := range [][2]float64{
		{math.NaN(), 1},
		{1, math.NaN()},
		{math.Inf(1), 1},
		{1, math.Inf(1)},
	} {
		g := New(2)
		if _, _, err := g.AddChannel(0, 1, capab[0], capab[1]); !errors.Is(err, ErrNonFiniteValue) {
			t.Fatalf("AddChannel(%v, %v) error = %v, want ErrNonFiniteValue", capab[0], capab[1], err)
		}
		if g.NumEdges() != 0 {
			t.Fatalf("NumEdges = %d after non-finite AddChannel, want 0", g.NumEdges())
		}
	}
}

func TestAddChannelRollsBackOnError(t *testing.T) {
	g := New(2)
	// Second direction fails due to negative capacity; the first direction
	// must be rolled back.
	if _, _, err := g.AddChannel(0, 1, 5, -1); err == nil {
		t.Fatal("AddChannel accepted negative capacity")
	}
	if g.NumEdges() != 0 {
		t.Fatalf("NumEdges = %d after failed AddChannel, want 0", g.NumEdges())
	}
}

func TestRemoveEdge(t *testing.T) {
	g := New(3)
	id, _ := g.AddEdge(0, 1, 1)
	id2, _ := g.AddEdge(1, 2, 1)
	if err := g.RemoveEdge(id); err != nil {
		t.Fatalf("RemoveEdge: %v", err)
	}
	if _, ok := g.Edge(id); ok {
		t.Fatal("removed edge still present")
	}
	if _, ok := g.Edge(id2); !ok {
		t.Fatal("unrelated edge removed")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if err := g.RemoveEdge(id); !errors.Is(err, ErrEdgeNotFound) {
		t.Fatalf("double remove error = %v, want ErrEdgeNotFound", err)
	}
}

func TestRemoveChannel(t *testing.T) {
	g := New(2)
	if _, _, err := g.AddChannel(0, 1, 3, 4); err != nil {
		t.Fatalf("AddChannel: %v", err)
	}
	if err := g.RemoveChannel(0, 1); err != nil {
		t.Fatalf("RemoveChannel: %v", err)
	}
	if g.NumEdges() != 0 {
		t.Fatalf("NumEdges = %d, want 0", g.NumEdges())
	}
	if err := g.RemoveChannel(0, 1); !errors.Is(err, ErrEdgeNotFound) {
		t.Fatalf("RemoveChannel on empty = %v, want ErrEdgeNotFound", err)
	}
}

func TestRemoveChannelPicksLatestParallel(t *testing.T) {
	g := New(2)
	ab1, _, err := g.AddChannel(0, 1, 1, 1)
	if err != nil {
		t.Fatalf("AddChannel: %v", err)
	}
	if _, _, err := g.AddChannel(0, 1, 2, 2); err != nil {
		t.Fatalf("AddChannel: %v", err)
	}
	if err := g.RemoveChannel(0, 1); err != nil {
		t.Fatalf("RemoveChannel: %v", err)
	}
	if _, ok := g.Edge(ab1); !ok {
		t.Fatal("oldest parallel channel was removed; want newest")
	}
	if g.NumChannels() != 1 {
		t.Fatalf("NumChannels = %d, want 1", g.NumChannels())
	}
}

func TestSetCapacity(t *testing.T) {
	g := New(2)
	id, _ := g.AddEdge(0, 1, 5)
	if err := g.SetCapacity(id, 9); err != nil {
		t.Fatalf("SetCapacity: %v", err)
	}
	e, _ := g.Edge(id)
	if e.Capacity != 9 {
		t.Fatalf("Capacity = %v, want 9", e.Capacity)
	}
	if err := g.SetCapacity(id, -1); !errors.Is(err, ErrNegativeValue) {
		t.Fatalf("SetCapacity(-1) error = %v, want ErrNegativeValue", err)
	}
	if err := g.SetCapacity(id, math.NaN()); !errors.Is(err, ErrNonFiniteValue) {
		t.Fatalf("SetCapacity(NaN) error = %v, want ErrNonFiniteValue", err)
	}
	if err := g.SetCapacity(id, math.Inf(1)); !errors.Is(err, ErrNonFiniteValue) {
		t.Fatalf("SetCapacity(+Inf) error = %v, want ErrNonFiniteValue", err)
	}
	if err := g.SetCapacity(99, 1); !errors.Is(err, ErrEdgeNotFound) {
		t.Fatalf("SetCapacity(bad id) error = %v, want ErrEdgeNotFound", err)
	}
}

func TestDegreesAndNeighbors(t *testing.T) {
	g := New(4)
	mustChannel(g, 0, 1, 1, 1)
	mustChannel(g, 0, 2, 1, 1)
	if _, err := g.AddEdge(3, 0, 1); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if got := g.OutDegree(0); got != 2 {
		t.Fatalf("OutDegree(0) = %d, want 2", got)
	}
	if got := g.InDegree(0); got != 3 {
		t.Fatalf("InDegree(0) = %d, want 3", got)
	}
	want := []NodeID{1, 2, 3}
	got := g.Neighbors(0)
	if len(got) != len(want) {
		t.Fatalf("Neighbors(0) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Neighbors(0) = %v, want %v", got, want)
		}
	}
}

func TestEdgesBetween(t *testing.T) {
	g := New(3)
	mustChannel(g, 0, 1, 1, 1)
	mustChannel(g, 0, 1, 2, 2)
	if got := len(g.EdgesBetween(0, 1)); got != 2 {
		t.Fatalf("EdgesBetween(0,1) count = %d, want 2", got)
	}
	if got := len(g.EdgesBetween(0, 2)); got != 0 {
		t.Fatalf("EdgesBetween(0,2) count = %d, want 0", got)
	}
	if !g.HasEdgeBetween(1, 0) {
		t.Fatal("HasEdgeBetween(1,0) = false, want true")
	}
	if g.HasEdgeBetween(1, 2) {
		t.Fatal("HasEdgeBetween(1,2) = true, want false")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := New(3)
	mustChannel(g, 0, 1, 1, 1)
	c := g.Clone()
	mustChannel(c, 1, 2, 1, 1)
	if g.NumEdges() != 2 {
		t.Fatalf("original mutated by clone edit: NumEdges = %d, want 2", g.NumEdges())
	}
	if c.NumEdges() != 4 {
		t.Fatalf("clone NumEdges = %d, want 4", c.NumEdges())
	}
	// Removing from the original must not affect the clone.
	if err := g.RemoveChannel(0, 1); err != nil {
		t.Fatalf("RemoveChannel: %v", err)
	}
	if c.NumEdges() != 4 {
		t.Fatalf("clone affected by original removal: NumEdges = %d, want 4", c.NumEdges())
	}
}

func TestForEachIterators(t *testing.T) {
	g := New(3)
	mustChannel(g, 0, 1, 1, 1)
	mustChannel(g, 0, 2, 1, 1)
	countOut := 0
	g.ForEachOut(0, func(Edge) bool { countOut++; return true })
	if countOut != 2 {
		t.Fatalf("ForEachOut visited %d edges, want 2", countOut)
	}
	countIn := 0
	g.ForEachIn(0, func(Edge) bool { countIn++; return true })
	if countIn != 2 {
		t.Fatalf("ForEachIn visited %d edges, want 2", countIn)
	}
	total := 0
	g.ForEachEdge(func(Edge) bool { total++; return true })
	if total != 4 {
		t.Fatalf("ForEachEdge visited %d edges, want 4", total)
	}
	// Early stop.
	stopped := 0
	g.ForEachEdge(func(Edge) bool { stopped++; return false })
	if stopped != 1 {
		t.Fatalf("ForEachEdge ignored early stop: visited %d", stopped)
	}
}

func TestOutEdgesReturnsCopy(t *testing.T) {
	g := New(2)
	mustChannel(g, 0, 1, 1, 1)
	ids := g.OutEdges(0)
	if len(ids) != 1 {
		t.Fatalf("OutEdges len = %d, want 1", len(ids))
	}
	ids[0] = 999
	if g.OutEdges(0)[0] == 999 {
		t.Fatal("OutEdges exposed internal slice")
	}
}

func TestIteratorsOnMissingNode(t *testing.T) {
	g := New(1)
	if got := g.OutEdges(7); got != nil {
		t.Fatalf("OutEdges(missing) = %v, want nil", got)
	}
	if got := g.InEdges(7); got != nil {
		t.Fatalf("InEdges(missing) = %v, want nil", got)
	}
	g.ForEachOut(7, func(Edge) bool { t.Fatal("visited edge of missing node"); return false })
	if got := g.Neighbors(7); got != nil {
		t.Fatalf("Neighbors(missing) = %v, want nil", got)
	}
}

func TestChannelPairs(t *testing.T) {
	g := New(3)
	mustChannel(g, 0, 1, 10, 7)
	mustChannel(g, 1, 2, 3, 4)
	pairs, unpaired := g.ChannelPairs()
	if len(pairs) != 2 || len(unpaired) != 0 {
		t.Fatalf("pairs=%d unpaired=%d, want 2/0", len(pairs), len(unpaired))
	}
	if pairs[0][0].From != 0 || pairs[0][0].Capacity != 10 || pairs[0][1].Capacity != 7 {
		t.Fatalf("first pair = %+v", pairs[0])
	}
	// An unpaired directed edge is reported.
	if _, err := g.AddEdge(2, 0, 1); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	_, unpaired = g.ChannelPairs()
	if len(unpaired) != 1 || unpaired[0].From != 2 {
		t.Fatalf("unpaired = %+v, want the 2→0 edge", unpaired)
	}
}

func TestChannelPairsParallel(t *testing.T) {
	g := New(2)
	mustChannel(g, 0, 1, 1, 2)
	mustChannel(g, 0, 1, 3, 4)
	pairs, unpaired := g.ChannelPairs()
	if len(pairs) != 2 || len(unpaired) != 0 {
		t.Fatalf("parallel channels: pairs=%d unpaired=%d", len(pairs), len(unpaired))
	}
}

func TestMarkRollbackRestoresGraph(t *testing.T) {
	g := New(4)
	mustChannel(g, 0, 1, 5, 5)
	mustChannel(g, 1, 2, 3, 3)
	mark := g.Mark()
	before := g.Clone()

	// Probe: add channels, including parallel ones, then roll back.
	for trial := 0; trial < 3; trial++ {
		mustChannel(g, 0, 3, 1, 1)
		mustChannel(g, 2, 3, 2, 2)
		mustChannel(g, 0, 3, 4, 4)
		if g.NumEdges() != before.NumEdges()+6 {
			t.Fatalf("trial %d: edges = %d", trial, g.NumEdges())
		}
		g.Rollback(mark)
		if g.NumEdges() != before.NumEdges() || g.MaxEdgeID() != mark {
			t.Fatalf("trial %d: rollback left %d edges, max id %d", trial, g.NumEdges(), g.MaxEdgeID())
		}
		for v := 0; v < 4; v++ {
			wantOut, gotOut := before.OutEdges(NodeID(v)), g.OutEdges(NodeID(v))
			if len(wantOut) != len(gotOut) {
				t.Fatalf("trial %d: out degree of %d = %d, want %d", trial, v, len(gotOut), len(wantOut))
			}
			for i := range wantOut {
				if wantOut[i] != gotOut[i] {
					t.Fatalf("trial %d: out list of %d diverges: %v vs %v", trial, v, gotOut, wantOut)
				}
			}
		}
	}
	// Identifiers are reused after rollback, so repeated probes cannot
	// grow the identifier space.
	id, err := g.AddEdge(0, 3, 1)
	if err != nil {
		t.Fatalf("AddEdge after rollback: %v", err)
	}
	if id != mark {
		t.Fatalf("post-rollback edge id = %d, want %d", id, mark)
	}
}

func TestRollbackSkipsAlreadyRemovedAndClamps(t *testing.T) {
	g := New(3)
	mustChannel(g, 0, 1, 1, 1)
	mark := g.Mark()
	ab, _, err := g.AddChannel(1, 2, 1, 1)
	if err != nil {
		t.Fatalf("AddChannel: %v", err)
	}
	if err := g.RemoveEdge(ab); err != nil {
		t.Fatalf("RemoveEdge: %v", err)
	}
	g.Rollback(mark) // must not trip on the already-dead edge
	if g.NumEdges() != 2 || g.MaxEdgeID() != mark {
		t.Fatalf("rollback left %d edges, max id %d", g.NumEdges(), g.MaxEdgeID())
	}
	g.Rollback(99) // out of range: no-op
	g.Rollback(-1) // clamps to zero: removes everything
	if g.NumEdges() != 0 || g.MaxEdgeID() != 0 {
		t.Fatalf("full rollback left %d edges", g.NumEdges())
	}
}
