package graph

import "math/rand"

// The generators below build the symmetric topologies analysed in §IV plus
// random models used by the experiment corpus. All of them create
// bidirectional channels with the given balance on each end.

// Star returns a star graph with one central node (node 0) and leaves
// nodes 1..leaves, as analysed in Theorems 7-9.
func Star(leaves int, balance float64) *Graph {
	g := New(leaves + 1)
	for i := 1; i <= leaves; i++ {
		mustChannel(g, 0, NodeID(i), balance, balance)
	}
	return g
}

// Path returns a path graph 0-1-…-(n-1), as analysed in Theorem 10.
func Path(n int, balance float64) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		mustChannel(g, NodeID(i), NodeID(i+1), balance, balance)
	}
	return g
}

// Circle returns a cycle graph 0-1-…-(n-1)-0, as analysed in Theorem 11.
// It requires n ≥ 3; smaller n degenerate to a path.
func Circle(n int, balance float64) *Graph {
	g := Path(n, balance)
	if n >= 3 {
		mustChannel(g, NodeID(n-1), 0, balance, balance)
	}
	return g
}

// Complete returns the complete graph on n nodes.
func Complete(n int, balance float64) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			mustChannel(g, NodeID(i), NodeID(j), balance, balance)
		}
	}
	return g
}

// Wheel returns a wheel graph: a circle on nodes 1..n with a hub (node 0)
// connected to every circle node. Used by the Theorem 6 hub experiments.
func Wheel(n int, balance float64) *Graph {
	g := New(n + 1)
	for i := 1; i <= n; i++ {
		mustChannel(g, 0, NodeID(i), balance, balance)
		next := NodeID(i%n + 1)
		mustChannel(g, NodeID(i), next, balance, balance)
	}
	return g
}

// ErdosRenyi returns a G(n, p) random graph: every unordered pair gets a
// channel independently with probability p.
func ErdosRenyi(n int, p float64, balance float64, rng *rand.Rand) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				mustChannel(g, NodeID(i), NodeID(j), balance, balance)
			}
		}
	}
	return g
}

// BarabasiAlbert returns a preferential-attachment graph: starting from a
// small clique of m+1 nodes, each new node attaches m channels to existing
// nodes with probability proportional to their degree. The paper motivates
// its transaction model with exactly this process (§I, [21]), so it is the
// default random corpus for the experiments.
func BarabasiAlbert(n, m int, balance float64, rng *rand.Rand) *Graph {
	if m < 1 {
		m = 1
	}
	if n < m+1 {
		n = m + 1
	}
	g := Complete(m+1, balance)
	// repeated holds one entry per channel endpoint, so sampling a uniform
	// element implements degree-proportional selection.
	var repeated []NodeID
	for i := 0; i <= m; i++ {
		for j := 0; j <= m; j++ {
			if i != j {
				repeated = append(repeated, NodeID(i))
			}
		}
	}
	for v := m + 1; v < n; v++ {
		id := g.AddNode()
		seen := make(map[NodeID]struct{}, m)
		chosen := make([]NodeID, 0, m)
		for len(chosen) < m {
			target := repeated[rng.Intn(len(repeated))]
			if target == id {
				continue
			}
			if _, dup := seen[target]; dup {
				continue
			}
			seen[target] = struct{}{}
			chosen = append(chosen, target)
		}
		// Insertion order follows the draw order (not map order) so the
		// construction is a pure function of the RNG stream.
		for _, target := range chosen {
			mustChannel(g, id, target, balance, balance)
			repeated = append(repeated, id, target)
		}
	}
	return g
}

// ConnectedErdosRenyi draws G(n,p) graphs until one is strongly connected,
// giving experiment corpora the connectivity the utility model assumes.
// It gives up after maxTries and returns the last draw with a circle
// superimposed to guarantee connectivity.
func ConnectedErdosRenyi(n int, p float64, balance float64, rng *rand.Rand, maxTries int) *Graph {
	for try := 0; try < maxTries; try++ {
		g := ErdosRenyi(n, p, balance, rng)
		if g.StronglyConnected() {
			return g
		}
	}
	g := ErdosRenyi(n, p, balance, rng)
	for i := 0; i < n; i++ {
		next := NodeID((i + 1) % n)
		if !g.HasEdgeBetween(NodeID(i), next) {
			mustChannel(g, NodeID(i), next, balance, balance)
		}
	}
	return g
}

func mustChannel(g *Graph, a, b NodeID, balA, balB float64) {
	if _, _, err := g.AddChannel(a, b, balA, balB); err != nil {
		// Generators only pass identifiers they created; failure here is a
		// programming error, not a runtime condition.
		panic(err)
	}
}
