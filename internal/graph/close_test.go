package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

// isolate closes every channel incident to v, the graph half of a node
// departure.
func isolate(t *testing.T, g *Graph, v NodeID) {
	t.Helper()
	for _, w := range g.Neighbors(v) {
		for g.HasEdgeBetween(v, w) || g.HasEdgeBetween(w, v) {
			if err := g.RemoveChannel(v, w); err != nil {
				t.Fatalf("RemoveChannel(%d,%d): %v", v, w, err)
			}
		}
	}
}

// TestFoldCloseMatchesRebuild is the decremental differential: random
// histories of batched departures interleaved with arrivals, the folded
// planes compared cell-for-cell (distances and path counts) against a
// from-scratch rebuild after every fold, across worker counts.
func TestFoldCloseMatchesRebuild(t *testing.T) {
	for _, start := range []struct {
		name string
		g    *Graph
	}{
		{"path", Path(9, 1)},
		{"star", Star(8, 1)},
		{"sparse-er", ErdosRenyi(12, 0.2, 1, rand.New(rand.NewSource(3)))}, // usually disconnected
		{"ba", BarabasiAlbert(14, 2, 1, rand.New(rand.NewSource(4)))},
	} {
		for _, workers := range []int{1, 4, 8} {
			t.Run(fmt.Sprintf("%s/w%d", start.name, workers), func(t *testing.T) {
				rng := rand.New(rand.NewSource(23))
				g := start.g.Clone()
				ap := g.AllPairsBFS()
				apT := ap.Transposed()
				sc := &CloseScratch{}
				for round := 0; round < 8; round++ {
					// Depart a batch of 1..3 distinct nodes (some may
					// already be isolated — those fold for free).
					n := g.NumNodes()
					batch := []NodeID{}
					for len(batch) < 1+rng.Intn(3) {
						v := NodeID(rng.Intn(n))
						dup := false
						for _, b := range batch {
							dup = dup || b == v
						}
						if !dup {
							batch = append(batch, v)
						}
					}
					for _, v := range batch {
						isolate(t, g, v)
					}
					FoldClose(ap, apT, g, batch, workers, sc)
					tag := fmt.Sprintf("round %d close %v", round, batch)
					requireAllPairsEqual(t, tag, g, ap, apT)

					// Interleave an arrival so later folds run against
					// extended (Stride > N) planes.
					peers := map[NodeID]int{}
					for c := rng.Intn(3); c > 0; c-- {
						peers[NodeID(rng.Intn(n))]++
					}
					inDist, inSigma, outDist, outSigma := joinAggregates(ap, apT, peers)
					u := g.AddNode()
					for v, mult := range peers {
						for i := 0; i < mult; i++ {
							mustChannel(g, u, v, 1, 1)
						}
					}
					ExtendWithNode(ap, apT, int(u), inDist, inSigma, outDist, outSigma)
					requireAllPairsEqual(t, tag+" then arrival", g, ap, apT)
				}
			})
		}
	}
}

// TestFoldCloseRepairTiers pins the sparsity claims the fold's speedup
// rests on, tier by tier: a departing endpoint is interior to no
// shortest path, so zero rows pay anything; a cut vertex strands pairs
// on both sides, but the E-relaxation settles the small stranded sets
// without a single BFS; only a departing hub (exhausted sets beyond
// maxCloseRelax) or a multi-node batch whose rows collide with several
// departures falls back to the BFS kernel.
func TestFoldCloseRepairTiers(t *testing.T) {
	g := Path(6, 1)
	ap := g.AllPairsBFS()
	apT := ap.Transposed()
	isolate(t, g, 5)
	if rep := FoldClose(ap, apT, g, []NodeID{5}, 1, nil); rep != 0 {
		t.Fatalf("leaf departure repaired %d rows by BFS, want 0", rep)
	}
	requireAllPairsEqual(t, "leaf", g, ap, apT)

	// A cut vertex disconnects the halves; every surviving row is
	// affected, yet each row's exhausted set (the far half, 2 targets)
	// settles by relaxation — the BFS count stays zero.
	g2 := Path(5, 1)
	ap2 := g2.AllPairsBFS()
	apT2 := ap2.Transposed()
	isolate(t, g2, 2)
	if rep := FoldClose(ap2, apT2, g2, []NodeID{2}, 1, nil); rep != 0 {
		t.Fatalf("cut-vertex departure repaired %d rows by BFS, want relaxation only", rep)
	}
	requireAllPairsEqual(t, "cut", g2, ap2, apT2)

	// A departing hub strands every leaf pair at once: 39 exhausted
	// targets per leaf row overflows maxCloseRelax and all 40 surviving
	// rows take the BFS fallback.
	g3 := Star(40, 1)
	ap3 := g3.AllPairsBFS()
	apT3 := ap3.Transposed()
	isolate(t, g3, 0)
	if rep := FoldClose(ap3, apT3, g3, []NodeID{0}, 1, nil); rep != 40 {
		t.Fatalf("hub departure repaired %d rows by BFS, want 40", rep)
	}
	requireAllPairsEqual(t, "hub", g3, ap3, apT3)

	// A batch whose rows collide with two departures at once cannot
	// subtract (paths may thread both), so the surviving rows BFS.
	g4 := Path(5, 1)
	ap4 := g4.AllPairsBFS()
	apT4 := ap4.Transposed()
	isolate(t, g4, 1)
	isolate(t, g4, 3)
	if rep := FoldClose(ap4, apT4, g4, []NodeID{1, 3}, 1, nil); rep != 3 {
		t.Fatalf("batch departure repaired %d rows by BFS, want 3", rep)
	}
	requireAllPairsEqual(t, "batch", g4, ap4, apT4)
}

// TestFoldClosePanicsOnConnected pins the contract: folding a node that
// still has channels is a caller bug, not silent corruption.
func TestFoldClosePanicsOnConnected(t *testing.T) {
	g := Path(4, 1)
	ap := g.AllPairsBFS()
	apT := ap.Transposed()
	defer func() {
		if recover() == nil {
			t.Fatal("FoldClose of a connected node did not panic")
		}
	}()
	FoldClose(ap, apT, g, []NodeID{1}, 1, nil)
}

// TestFoldCloseAllocFree pins the steady-state churn cycle at zero
// allocations per (depart, fold, reattach, fold) round with a warmed
// scratch and a single worker: the fold repairs in place — no Reserve,
// no re-layout, no CSR re-bake — so a long-running session absorbs
// departures without garbage. The reattach leg drives the planes back
// to the same state every cycle via the extend kernels, with the
// channel additions rolled back through the Mark watermark so the edge
// table does not grow across cycles.
func TestFoldCloseAllocFree(t *testing.T) {
	g := Path(17, 1)
	v := NodeID(8) // middle of the path: every cross-half row repairs
	ap := g.AllPairsBFS()
	apT := ap.Transposed()
	n := g.NumNodes()

	sc := &CloseScratch{}
	pend := []NodeID{v}
	isolate(t, g, v)
	FoldClose(ap, apT, g, pend, 1, sc) // also re-bakes the torn CSR once

	inD := make([]uint16, n)
	inS := make([]float64, n)
	outD := make([]uint16, n)
	outS := make([]float64, n)
	var out32 []int32
	peers := []NodeID{7, 9}
	cycle := func() {
		mark := g.Mark()
		for x := 0; x < n; x++ {
			inD[x], inS[x] = Inf16, 0
			outD[x], outS[x] = Inf16, 0
		}
		for _, w := range peers {
			mustChannel(g, v, w, 1, 1)
			foldAggregateCol(inD, inS, apT.DistRow(int(w)), apT.SigmaRow(int(w)), 1)
			foldAggregateCol(outD, outS, ap.DistRow(int(w)), ap.SigmaRow(int(w)), 1)
		}
		out32 = promoteDist(outD, out32)
		extendPairsRowsPromoted(ap, apT, inD, inS, out32, outS, 0, n)
		extendOwnRowCol(ap, apT, int(v), inD, inS, outD, outS)
		g.Rollback(mark)
		FoldClose(ap, apT, g, pend, 1, sc)
	}
	cycle() // warm every buffer
	requireAllPairsEqual(t, "steady state", g, ap, apT)
	if allocs := testing.AllocsPerRun(50, cycle); allocs != 0 {
		t.Fatalf("close-fold-reattach cycle allocates %v per run, want 0", allocs)
	}
	requireAllPairsEqual(t, "after alloc runs", g, ap, apT)
}
