package graph

// This file is the CSR (compressed sparse row) adjacency cache: the flat
// neighbor layout every BFS inner loop in the package runs on. The
// mutable source of truth stays the per-node edge-identifier lists of
// graph.go; the CSR is a derived view that the hot traversals —
// AllPairsBFS and its parallel variant, BFSCounts, the Brandes
// betweenness accumulation — iterate instead of chasing an EdgeID slice
// and an Edge struct per neighbor visit. One BFS step reads a contiguous
// int32 run per node, which at n=10k is the difference between streaming
// a few megabytes and pointer-hopping across the edge table.
//
// Coherence contract. A built CSR snapshot covers every edge with
// identifier below its watermark. Edges added later land in per-node
// *append regions* (extra), so the probe workloads that dominate the
// library — Mark, add a few candidate channels, BFS, Rollback, repeat —
// never invalidate the snapshot: AddEdge appends to the region, Rollback
// (and RemoveEdge of a post-watermark edge) pops it again, and the
// steady state allocates nothing. Only removing a pre-watermark edge
// tears the snapshot down (deletions are the slow path everywhere in
// this repository); the next traversal rebuilds it in O(n+m). When the
// append regions outgrow a fraction of the snapshot the next ensureCSR
// folds them in, so long append-only growth (the GrowSession commit
// path) re-bases at amortized O(1) per edge.
//
// Iteration order equals g.out[v] order — pre-watermark edges first (in
// out-list order), then the append region (in insertion order) — so a
// CSR traversal visits edges in exactly the sequence the slice-of-slice
// adjacency would. Path-count accumulation order is therefore unchanged,
// which keeps every BFS-derived float bit-identical to the pre-CSR
// substrate.

// csrEdge is one append-region entry: the neighbor and the edge that
// reaches it (betweenness needs the identifier, plain BFS only the
// target).
type csrEdge struct {
	to NodeID
	id EdgeID
}

// csrAdj is one built adjacency snapshot plus its append regions.
type csrAdj struct {
	// Offsets has length NumNodes+1 at build time; node v's baked
	// neighbors occupy Neighbors[Offsets[v]:Offsets[v+1]]. Nodes added
	// after the build have no baked run and live purely in extra.
	Offsets []int32
	// Neighbors holds the target node of every baked edge, grouped by
	// source in out-list order; EdgeIDs is the parallel edge identifier
	// array.
	Neighbors []int32
	EdgeIDs   []int32
	// watermark is len(g.edges) at build time: every edge with id <
	// watermark is baked, everything newer lives in extra. -1 marks a
	// torn-down snapshot kept only for its buffers (csrRemoveEdge of a
	// baked edge): the next ensureCSR re-bakes into it in place.
	watermark int
	// nodes is the node count covered by Offsets.
	nodes int
	// extra holds the per-node append regions; extraCount totals their
	// entries (the rebuild trigger).
	extra      [][]csrEdge
	extraCount int
}

// ensureCSR returns a coherent CSR view of the graph, building or
// re-basing it as needed. Callers must not mutate the graph while
// holding the returned view.
func (g *Graph) ensureCSR() *csrAdj {
	c := g.csr
	if c != nil && c.watermark >= 0 && c.extraCount*4 <= len(c.Neighbors)+64 {
		return c
	}
	return g.rebuildCSR()
}

// rebuildCSR bakes the stable live adjacency into a snapshot. Edges
// added by an in-flight probe (at or above the outstanding Mark floor)
// stay in the append regions, so the probe's Rollback pops them instead
// of tearing the snapshot down. The prior snapshot's buffers — including
// a torn-down one kept by csrRemoveEdge — are reused in place when large
// enough, so the churn steady state (close channels, fold, re-bake)
// allocates nothing; any previously returned view is already dead by the
// ensureCSR contract when a rebuild can run.
func (g *Graph) rebuildCSR() *csrAdj {
	n := len(g.out)
	wm := len(g.edges)
	if g.markFloor >= 0 && g.markFloor < wm {
		wm = g.markFloor
	}
	c := g.csr
	if c == nil {
		c = &csrAdj{}
	}
	c.watermark = wm
	c.nodes = n
	if cap(c.Offsets) >= n+1 {
		c.Offsets = c.Offsets[:n+1]
		c.Offsets[0] = 0
	} else {
		c.Offsets = make([]int32, n+1)
	}
	if cap(c.extra) >= n {
		c.extra = c.extra[:n]
		for i := range c.extra {
			c.extra[i] = c.extra[i][:0]
		}
	} else {
		c.extra = make([][]csrEdge, n)
	}
	c.extraCount = 0
	total := 0
	for v := range g.out {
		for _, id := range g.out[v] {
			if int(id) < wm {
				total++
			}
		}
		c.Offsets[v+1] = int32(total)
	}
	if cap(c.Neighbors) >= total {
		c.Neighbors = c.Neighbors[:total]
		c.EdgeIDs = c.EdgeIDs[:total]
	} else {
		c.Neighbors = make([]int32, total)
		c.EdgeIDs = make([]int32, total)
	}
	i := 0
	for v := range g.out {
		for _, id := range g.out[v] {
			if int(id) < wm {
				c.Neighbors[i] = int32(g.edges[id].To)
				c.EdgeIDs[i] = int32(id)
				i++
			} else {
				c.extra[v] = append(c.extra[v], csrEdge{to: g.edges[id].To, id: id})
				c.extraCount++
			}
		}
	}
	g.csr = c
	return c
}

// csrAddNode extends the cache for a freshly appended node.
func (g *Graph) csrAddNode() {
	c := g.csr
	if c == nil {
		return
	}
	if len(c.extra) < cap(c.extra) {
		// Re-extend into retained capacity, reusing the region buffer a
		// previous rebuild may have left there.
		c.extra = c.extra[:len(c.extra)+1]
		c.extra[len(c.extra)-1] = c.extra[len(c.extra)-1][:0]
	} else {
		c.extra = append(c.extra, nil)
	}
}

// csrAddEdge records a freshly added edge in its append region.
func (g *Graph) csrAddEdge(from, to NodeID, id EdgeID) {
	c := g.csr
	if c == nil {
		return
	}
	c.extra[from] = append(c.extra[from], csrEdge{to: to, id: id})
	c.extraCount++
}

// csrRemoveEdge reconciles the cache with an edge removal: post-watermark
// edges pop out of their append region, pre-watermark removals tear the
// snapshot down (the next traversal rebuilds into its retained buffers).
func (g *Graph) csrRemoveEdge(e Edge) {
	c := g.csr
	if c == nil {
		return
	}
	if c.watermark < 0 {
		return // already torn down, kept only for its buffers
	}
	if int(e.ID) < c.watermark {
		c.watermark = -1
		return
	}
	// Rollback removes newest-first, so scan the region from the tail.
	ex := c.extra[e.From]
	for i := len(ex) - 1; i >= 0; i-- {
		if ex[i].id == e.ID {
			copy(ex[i:], ex[i+1:])
			c.extra[e.From] = ex[:len(ex)-1]
			c.extraCount--
			return
		}
	}
	// An appended edge that is not in its region means the cache has
	// drifted; fail safe by invalidating (buffers retained).
	c.watermark = -1
}

// PrimeCSR builds (or re-bases) the CSR adjacency cache eagerly and
// reports whether a coherent snapshot now covers every live edge with no
// append-region backlog. Concurrent read-only traversals (BFSCounts,
// betweenness, Diameter) are race-free only while the cache is already
// coherent — ensureCSR mutates the graph when it has to rebuild — so a
// single-writer/many-reader host (the session server) primes the cache
// once per write batch, before readers are allowed back in.
func (g *Graph) PrimeCSR() {
	g.ensureCSR()
	c := g.csr
	if c != nil && c.extraCount > 0 && (g.markFloor < 0 || g.markFloor >= len(g.edges)) {
		// Fold the append regions in now rather than letting a future
		// reader cross the rebuild threshold mid-traversal.
		g.rebuildCSR()
	}
}
