package chain

import (
	"errors"
	"math"
	"testing"
)

func newFunded(t *testing.T, fee float64, accounts ...float64) *Ledger {
	t.Helper()
	l, err := NewLedger(fee)
	if err != nil {
		t.Fatalf("NewLedger: %v", err)
	}
	for i, amt := range accounts {
		if err := l.Fund(AccountID(i), amt); err != nil {
			t.Fatalf("Fund: %v", err)
		}
	}
	return l
}

func TestNewLedgerRejectsNegativeFee(t *testing.T) {
	if _, err := NewLedger(-1); !errors.Is(err, ErrBadAmount) {
		t.Fatalf("error = %v, want ErrBadAmount", err)
	}
}

func TestFundAndBalance(t *testing.T) {
	l := newFunded(t, 1, 50, 30)
	if got := l.Balance(0); got != 50 {
		t.Fatalf("Balance(0) = %v, want 50", got)
	}
	if got := l.Balance(99); got != 0 {
		t.Fatalf("Balance(unknown) = %v, want 0", got)
	}
	if err := l.Fund(0, -5); !errors.Is(err, ErrBadAmount) {
		t.Fatalf("negative fund error = %v", err)
	}
}

func TestOpenChannelMovesFundsAndSplitsFee(t *testing.T) {
	l := newFunded(t, 2, 50, 30)
	out, err := l.OpenChannel(0, 1, 10, 5)
	if err != nil {
		t.Fatalf("OpenChannel: %v", err)
	}
	// Each party pays deposit + C/2.
	if got := l.Balance(0); got != 50-10-1 {
		t.Fatalf("Balance(0) = %v, want 39", got)
	}
	if got := l.Balance(1); got != 30-5-1 {
		t.Fatalf("Balance(1) = %v, want 24", got)
	}
	v, err := l.OutputValue(out)
	if err != nil || v != 15 {
		t.Fatalf("OutputValue = %v/%v, want 15", v, err)
	}
	if l.Burned() != 2 {
		t.Fatalf("Burned = %v, want 2", l.Burned())
	}
}

func TestOpenChannelInsufficientFunds(t *testing.T) {
	l := newFunded(t, 2, 5, 100)
	if _, err := l.OpenChannel(0, 1, 10, 5); !errors.Is(err, ErrInsufficientFunds) {
		t.Fatalf("error = %v, want ErrInsufficientFunds", err)
	}
	// A failed open must not mutate balances.
	if l.Balance(0) != 5 || l.Balance(1) != 100 {
		t.Fatal("failed open mutated balances")
	}
}

func TestCooperativeCloseSharesFee(t *testing.T) {
	l := newFunded(t, 2, 50, 30)
	out, err := l.OpenChannel(0, 1, 10, 5)
	if err != nil {
		t.Fatalf("OpenChannel: %v", err)
	}
	// Off-chain the balance moved: A has 3, B has 12.
	if err := l.CloseChannel(out, 3, 12, TxCooperativeClose, 0); err != nil {
		t.Fatalf("CloseChannel: %v", err)
	}
	// A receives 3 − C/2 = 2; B receives 12 − 1 = 11.
	if got := l.Balance(0); got != 39+2 {
		t.Fatalf("Balance(0) = %v, want 41", got)
	}
	if got := l.Balance(1); got != 24+11 {
		t.Fatalf("Balance(1) = %v, want 35", got)
	}
}

func TestUnilateralCloseChargesCloser(t *testing.T) {
	l := newFunded(t, 2, 50, 30)
	out, err := l.OpenChannel(0, 1, 10, 5)
	if err != nil {
		t.Fatalf("OpenChannel: %v", err)
	}
	if err := l.CloseChannel(out, 3, 12, TxUnilateralClose, 1); err != nil {
		t.Fatalf("CloseChannel: %v", err)
	}
	if got := l.Balance(0); got != 39+3 {
		t.Fatalf("Balance(0) = %v, want 42", got)
	}
	if got := l.Balance(1); got != 24+10 {
		t.Fatalf("Balance(1) = %v, want 34", got)
	}
}

func TestCloseChannelValidation(t *testing.T) {
	l := newFunded(t, 2, 50, 30)
	out, err := l.OpenChannel(0, 1, 10, 5)
	if err != nil {
		t.Fatalf("OpenChannel: %v", err)
	}
	if err := l.CloseChannel(99, 3, 12, TxCooperativeClose, 0); !errors.Is(err, ErrUnknownOutput) {
		t.Fatalf("unknown output error = %v", err)
	}
	if err := l.CloseChannel(out, 3, 11, TxCooperativeClose, 0); !errors.Is(err, ErrBadAmount) {
		t.Fatalf("non-conserving close error = %v", err)
	}
	if err := l.CloseChannel(out, 3, 12, TxUnilateralClose, 7); !errors.Is(err, ErrUnknownAccount) {
		t.Fatalf("outsider closer error = %v", err)
	}
	if err := l.CloseChannel(out, 3, 12, TxFunding, 0); !errors.Is(err, ErrBadAmount) {
		t.Fatalf("bad kind error = %v", err)
	}
	if err := l.CloseChannel(out, 3, 12, TxCooperativeClose, 0); err != nil {
		t.Fatalf("valid close rejected: %v", err)
	}
	if err := l.CloseChannel(out, 3, 12, TxCooperativeClose, 0); !errors.Is(err, ErrSpentOutput) {
		t.Fatalf("double close error = %v", err)
	}
}

func TestCloseFeeExceedsPayout(t *testing.T) {
	// Fee 4 > payout 1 on A's side: A gets dust-limited to 0.
	l := newFunded(t, 4, 50, 30)
	out, err := l.OpenChannel(0, 1, 1, 10)
	if err != nil {
		t.Fatalf("OpenChannel: %v", err)
	}
	if err := l.CloseChannel(out, 1, 10, TxUnilateralClose, 0); err != nil {
		t.Fatalf("CloseChannel: %v", err)
	}
	if got := l.Balance(0); got != 50-1-2 {
		t.Fatalf("Balance(0) = %v, want 47", got)
	}
}

func TestTransfer(t *testing.T) {
	l := newFunded(t, 1, 20, 0)
	if err := l.Transfer(0, 1, 5); err != nil {
		t.Fatalf("Transfer: %v", err)
	}
	if l.Balance(0) != 14 || l.Balance(1) != 5 {
		t.Fatalf("balances = %v/%v, want 14/5", l.Balance(0), l.Balance(1))
	}
	if err := l.Transfer(0, 1, 100); !errors.Is(err, ErrInsufficientFunds) {
		t.Fatalf("overdraft error = %v", err)
	}
	if err := l.Transfer(0, 1, -1); !errors.Is(err, ErrBadAmount) {
		t.Fatalf("negative transfer error = %v", err)
	}
}

func TestValueConservation(t *testing.T) {
	// Total value + burned fees is invariant across the whole lifecycle.
	l := newFunded(t, 2, 100, 60)
	initial := l.TotalValue()
	out, err := l.OpenChannel(0, 1, 30, 20)
	if err != nil {
		t.Fatalf("OpenChannel: %v", err)
	}
	if err := l.Transfer(0, 1, 10); err != nil {
		t.Fatalf("Transfer: %v", err)
	}
	if err := l.CloseChannel(out, 50, 0, TxCooperativeClose, 0); err != nil {
		t.Fatalf("CloseChannel: %v", err)
	}
	if got := l.TotalValue() + l.Burned(); math.Abs(got-initial) > 1e-9 {
		t.Fatalf("value leaked: %v + %v ≠ %v", l.TotalValue(), l.Burned(), initial)
	}
}

func TestLogAndHeight(t *testing.T) {
	l := newFunded(t, 1, 50, 50)
	out, err := l.OpenChannel(0, 1, 5, 5)
	if err != nil {
		t.Fatalf("OpenChannel: %v", err)
	}
	if err := l.CloseChannel(out, 5, 5, TxCooperativeClose, 0); err != nil {
		t.Fatalf("CloseChannel: %v", err)
	}
	log := l.Log()
	if len(log) != 2 {
		t.Fatalf("log length = %d, want 2", len(log))
	}
	if log[0].Kind != TxFunding || log[1].Kind != TxCooperativeClose {
		t.Fatalf("log kinds = %v/%v", log[0].Kind, log[1].Kind)
	}
	if log[0].Height != 1 || log[1].Height != 2 || l.Height() != 2 {
		t.Fatal("heights not sequential")
	}
	// Log is a copy.
	log[0].Fee = 999
	if l.Log()[0].Fee == 999 {
		t.Fatal("Log exposed internal slice")
	}
}

func TestTxKindStrings(t *testing.T) {
	kinds := []TxKind{TxFunding, TxCooperativeClose, TxUnilateralClose, TxTransfer, TxKind(42)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Fatalf("empty name for kind %d", int(k))
		}
	}
}

func TestFeePerTx(t *testing.T) {
	l := newFunded(t, 2.5)
	if got := l.FeePerTx(); got != 2.5 {
		t.Fatalf("FeePerTx = %v, want 2.5", got)
	}
}
