// Package chain provides a minimal blockchain-ledger substrate for the
// payment-channel machinery: funding and settlement transactions with a
// per-transaction miner fee (the paper's C), confirmation heights and
// value-conservation accounting (§II-A, §II-C).
//
// The paper treats the chain purely as (a) the source of the channel cost
// C — two on-chain transactions per channel lifetime, fee shared between
// the parties — and (b) the settlement layer that pays out final channel
// balances. This simulator preserves exactly those behaviours.
package chain

import (
	"errors"
	"fmt"
)

// Errors returned by the ledger.
var (
	ErrInsufficientFunds = errors.New("chain: insufficient funds")
	ErrUnknownAccount    = errors.New("chain: unknown account")
	ErrUnknownOutput     = errors.New("chain: unknown output")
	ErrSpentOutput       = errors.New("chain: output already spent")
	ErrBadAmount         = errors.New("chain: bad amount")
)

// AccountID identifies an on-chain account.
type AccountID int

// OutputID identifies a multisig funding output created by a channel
// funding transaction.
type OutputID int

// TxKind labels the transactions the PCN lifecycle needs.
type TxKind int

const (
	// TxFunding locks coins of two parties into a shared output.
	TxFunding TxKind = iota + 1
	// TxCooperativeClose settles a funding output by mutual agreement;
	// the fee is shared.
	TxCooperativeClose
	// TxUnilateralClose settles a funding output unilaterally; the
	// closing party pays the whole fee.
	TxUnilateralClose
	// TxTransfer is a plain on-chain payment (the costly alternative the
	// benefit function U^b compares against).
	TxTransfer
)

// String names the transaction kind.
func (k TxKind) String() string {
	switch k {
	case TxFunding:
		return "funding"
	case TxCooperativeClose:
		return "coop-close"
	case TxUnilateralClose:
		return "unilateral-close"
	case TxTransfer:
		return "transfer"
	default:
		return fmt.Sprintf("TxKind(%d)", int(k))
	}
}

// Tx is a recorded on-chain transaction.
type Tx struct {
	Kind   TxKind
	Height int
	Fee    float64
	// Output is the funding output created (TxFunding) or spent
	// (close kinds).
	Output OutputID
	// Parties are the accounts involved.
	Parties [2]AccountID
}

// fundingOutput is a live 2-of-2 output.
type fundingOutput struct {
	parties [2]AccountID
	value   float64
	spent   bool
}

// Ledger is the chain state: account balances, funding outputs and the
// transaction log. The zero value is unusable; use NewLedger.
type Ledger struct {
	feePerTx float64
	balances map[AccountID]float64
	outputs  map[OutputID]*fundingOutput
	log      []Tx
	height   int
	nextOut  OutputID
	burned   float64
}

// NewLedger creates a ledger charging feePerTx (the paper's C) for every
// on-chain transaction.
func NewLedger(feePerTx float64) (*Ledger, error) {
	if feePerTx < 0 {
		return nil, fmt.Errorf("%w: fee %v", ErrBadAmount, feePerTx)
	}
	return &Ledger{
		feePerTx: feePerTx,
		balances: make(map[AccountID]float64),
		outputs:  make(map[OutputID]*fundingOutput),
	}, nil
}

// FeePerTx returns the miner fee C charged per transaction.
func (l *Ledger) FeePerTx() float64 { return l.feePerTx }

// Fund credits an account with freshly minted coins (test faucet /
// genesis allocation).
func (l *Ledger) Fund(acct AccountID, amount float64) error {
	if amount < 0 {
		return fmt.Errorf("%w: %v", ErrBadAmount, amount)
	}
	l.balances[acct] += amount
	return nil
}

// Balance returns an account's spendable balance.
func (l *Ledger) Balance(acct AccountID) float64 { return l.balances[acct] }

// Height returns the current chain height (one block per transaction,
// which is all the temporal resolution the model needs).
func (l *Ledger) Height() int { return l.height }

// Log returns a copy of the transaction log.
func (l *Ledger) Log() []Tx { return append([]Tx(nil), l.log...) }

// Burned returns the cumulative miner fees paid, used by the
// conservation checks.
func (l *Ledger) Burned() float64 { return l.burned }

// TotalValue returns all value in the system: balances plus unspent
// funding outputs.
func (l *Ledger) TotalValue() float64 {
	var total float64
	for _, b := range l.balances {
		total += b
	}
	for _, o := range l.outputs {
		if !o.spent {
			total += o.value
		}
	}
	return total
}

// OpenChannel posts a funding transaction locking depositA + depositB
// into a shared output. The miner fee is split equally between the
// parties, per §II-C ("parties only agree to open channels if they share
// this cost equally").
func (l *Ledger) OpenChannel(a, b AccountID, depositA, depositB float64) (OutputID, error) {
	if depositA < 0 || depositB < 0 {
		return 0, fmt.Errorf("open channel: %w: deposits %v/%v", ErrBadAmount, depositA, depositB)
	}
	needA := depositA + l.feePerTx/2
	needB := depositB + l.feePerTx/2
	if l.balances[a] < needA-amountTolerance {
		return 0, fmt.Errorf("open channel: account %d needs %v: %w", a, needA, ErrInsufficientFunds)
	}
	if l.balances[b] < needB-amountTolerance {
		return 0, fmt.Errorf("open channel: account %d needs %v: %w", b, needB, ErrInsufficientFunds)
	}
	l.balances[a] -= needA
	l.balances[b] -= needB
	id := l.nextOut
	l.nextOut++
	l.outputs[id] = &fundingOutput{parties: [2]AccountID{a, b}, value: depositA + depositB}
	l.burned += l.feePerTx
	l.record(Tx{Kind: TxFunding, Fee: l.feePerTx, Output: id, Parties: [2]AccountID{a, b}})
	return id, nil
}

// CloseChannel settles a funding output, paying finalA to the first party
// and finalB to the second. finalA+finalB must equal the output value
// (the channel state is off-chain; the chain only checks conservation).
// Cooperative closes share the fee; a unilateral close charges the
// closing party. The fee is deducted from the payouts, matching how
// commitment transactions embed fees.
func (l *Ledger) CloseChannel(out OutputID, finalA, finalB float64, kind TxKind, closer AccountID) error {
	o, ok := l.outputs[out]
	if !ok {
		return fmt.Errorf("close channel %d: %w", out, ErrUnknownOutput)
	}
	if o.spent {
		return fmt.Errorf("close channel %d: %w", out, ErrSpentOutput)
	}
	if finalA < 0 || finalB < 0 || !closeEnough(finalA+finalB, o.value) {
		return fmt.Errorf("close channel %d: payouts %v+%v ≠ %v: %w", out, finalA, finalB, o.value, ErrBadAmount)
	}
	var feeA, feeB float64
	switch kind {
	case TxCooperativeClose:
		feeA, feeB = l.feePerTx/2, l.feePerTx/2
	case TxUnilateralClose:
		switch closer {
		case o.parties[0]:
			feeA = l.feePerTx
		case o.parties[1]:
			feeB = l.feePerTx
		default:
			return fmt.Errorf("close channel %d: closer %d not a party: %w", out, closer, ErrUnknownAccount)
		}
	default:
		return fmt.Errorf("close channel %d: kind %v: %w", out, kind, ErrBadAmount)
	}
	// Fees cannot exceed the party's payout; the shortfall burns the
	// payout entirely (dust), which conservation accounting tracks.
	payA := finalA - feeA
	payB := finalB - feeB
	if payA < 0 {
		feeA = finalA
		payA = 0
	}
	if payB < 0 {
		feeB = finalB
		payB = 0
	}
	o.spent = true
	l.balances[o.parties[0]] += payA
	l.balances[o.parties[1]] += payB
	l.burned += feeA + feeB
	l.record(Tx{Kind: kind, Fee: feeA + feeB, Output: out, Parties: o.parties})
	return nil
}

// Transfer posts a plain on-chain payment; the sender pays the miner fee.
func (l *Ledger) Transfer(from, to AccountID, amount float64) error {
	if amount < 0 {
		return fmt.Errorf("transfer: %w: %v", ErrBadAmount, amount)
	}
	need := amount + l.feePerTx
	if l.balances[from] < need-amountTolerance {
		return fmt.Errorf("transfer: account %d needs %v: %w", from, need, ErrInsufficientFunds)
	}
	l.balances[from] -= need
	l.balances[to] += amount
	l.burned += l.feePerTx
	l.record(Tx{Kind: TxTransfer, Fee: l.feePerTx, Parties: [2]AccountID{from, to}})
	return nil
}

// OutputValue returns the value locked in an unspent funding output.
func (l *Ledger) OutputValue(out OutputID) (float64, error) {
	o, ok := l.outputs[out]
	if !ok || o.spent {
		return 0, fmt.Errorf("output %d: %w", out, ErrUnknownOutput)
	}
	return o.value, nil
}

func (l *Ledger) record(tx Tx) {
	l.height++
	tx.Height = l.height
	l.log = append(l.log, tx)
}

const amountTolerance = 1e-9

func closeEnough(a, b float64) bool {
	d := a - b
	return d < amountTolerance && d > -amountTolerance
}
