package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func postJSON(t *testing.T, srv *httptest.Server, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := srv.Client().Post(srv.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read %s response: %v", path, err)
	}
	return resp, data
}

func getOK(t *testing.T, srv *httptest.Server, path string) []byte {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s response: %v", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, data)
	}
	return data
}

func TestHTTPQueryCommitCheckpointCycle(t *testing.T) {
	s := newTestSession(t, 24, 11)
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	var health struct {
		Epoch uint64 `json:"epoch"`
		Nodes int    `json:"nodes"`
	}
	if err := json.Unmarshal(getOK(t, srv, "/v1/healthz"), &health); err != nil {
		t.Fatalf("healthz decode: %v", err)
	}
	if health.Nodes != 24 || health.Epoch == 0 {
		t.Fatalf("healthz = %+v", health)
	}

	resp, body := postJSON(t, srv, "/v1/price-join", `{"budget":6,"lock":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("price-join status %d: %s", resp.StatusCode, body)
	}
	var priced struct {
		Epoch    uint64 `json:"epoch"`
		Strategy []struct {
			Peer int     `json:"peer"`
			Lock float64 `json:"lock"`
		} `json:"strategy"`
		Objective float64 `json:"objective"`
	}
	if err := json.Unmarshal(body, &priced); err != nil {
		t.Fatalf("price-join decode: %v", err)
	}
	if len(priced.Strategy) == 0 {
		t.Fatalf("price-join returned empty strategy: %s", body)
	}

	resp, body = postJSON(t, srv, "/v1/price-join/batch", `{"queries":[{"budget":4,"lock":1},{"budget":8,"lock":1}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	var batch struct {
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(body, &batch); err != nil || len(batch.Results) != 2 {
		t.Fatalf("batch decode: %v (%s)", err, body)
	}

	resp, body = postJSON(t, srv, "/v1/best-response", `{"node":3,"budget":6,"lock":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("best-response status %d: %s", resp.StatusCode, body)
	}

	getOK(t, srv, "/v1/metrics")

	// Commit the priced strategy and confirm the epoch moved.
	strategyJSON, _ := json.Marshal(priced.Strategy)
	resp, body = postJSON(t, srv, "/v1/commit", fmt.Sprintf(`{"strategy":%s}`, strategyJSON))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("commit status %d: %s", resp.StatusCode, body)
	}
	var committed struct {
		Node  int    `json:"node"`
		Epoch uint64 `json:"epoch"`
	}
	if err := json.Unmarshal(body, &committed); err != nil {
		t.Fatalf("commit decode: %v", err)
	}
	if committed.Node != 24 || committed.Epoch <= priced.Epoch {
		t.Fatalf("commit = %+v (priced at epoch %d)", committed, priced.Epoch)
	}

	// A query pinned to the pre-commit epoch now 409s.
	resp, body = postJSON(t, srv, "/v1/price-join", fmt.Sprintf(`{"budget":6,"lock":1,"atEpoch":%d}`, priced.Epoch))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("superseded pin status %d, want 409: %s", resp.StatusCode, body)
	}

	resp, body = postJSON(t, srv, "/v1/tick", `{"arrivals":3,"seed":7}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tick status %d: %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, srv, "/v1/close", `{"node":5}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("close status %d: %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, srv, "/v1/refresh", `{}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("refresh status %d: %s", resp.StatusCode, body)
	}

	// Checkpoint over HTTP, restore, and the restored session answers the
	// same query with the same price.
	ckpt := getOK(t, srv, "/v1/checkpoint")
	restored, err := Restore(bytes.NewReader(ckpt), Config{Params: testParams(), Workers: 2})
	if err != nil {
		t.Fatalf("Restore from HTTP checkpoint: %v", err)
	}
	want, err := s.PriceJoin(PriceQuery{Budget: 6, Lock: 1})
	if err != nil {
		t.Fatalf("PriceJoin(original): %v", err)
	}
	got, err := restored.PriceJoin(PriceQuery{Budget: 6, Lock: 1})
	if err != nil {
		t.Fatalf("PriceJoin(restored): %v", err)
	}
	if want.Objective != got.Objective || len(want.Strategy) != len(got.Strategy) {
		t.Fatalf("restored quote diverged: %+v vs %+v", got, want)
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	s := newTestSession(t, 10, 12)
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	// Malformed body → 400.
	resp, _ := postJSON(t, srv, "/v1/price-join", `{"budget":`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body status %d, want 400", resp.StatusCode)
	}
	// Invalid query → 400.
	resp, _ = postJSON(t, srv, "/v1/price-join", `{"budget":-1,"lock":1}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative budget status %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, srv, "/v1/best-response", `{"node":99,"budget":6,"lock":1}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown node status %d, want 400", resp.StatusCode)
	}
	// Wrong method → 405.
	resp2, err := srv.Client().Get(srv.URL + "/v1/price-join")
	if err != nil {
		t.Fatalf("GET price-join: %v", err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET price-join status %d, want 405", resp2.StatusCode)
	}
}
