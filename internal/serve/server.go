package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"github.com/lightning-creation-games/lcg/internal/core"
	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/traffic"
)

// NewHandler wires the session's query and commit surfaces onto an HTTP
// mux. Every response is JSON except the checkpoint stream; every
// response carries the epoch it was answered against. Error mapping:
// malformed requests are 400, a superseded pinned epoch is 409 (the
// client re-quotes), a stale substrate is 503, anything else 500.
//
// Query routes run under a per-request deadline (Config.QueryTimeout)
// so a stalled client cannot pin the read lock indefinitely; mutation
// routes are exempt (a mutation must finish once started), and the
// checkpoint stream gets a long write deadline instead — it holds the
// read lock while streaming, the one place a dead-slow client could
// starve every writer.
func NewHandler(s *Session) http.Handler {
	timed := func(h http.HandlerFunc) http.Handler {
		if s.cfg.QueryTimeout <= 0 {
			return h
		}
		return http.TimeoutHandler(h, s.cfg.QueryTimeout, "query deadline exceeded")
	}
	mux := http.NewServeMux()
	mux.Handle("/v1/healthz", timed(func(w http.ResponseWriter, r *http.Request) {
		if !method(w, r, http.MethodGet) {
			return
		}
		reply(w, map[string]any{"epoch": s.Epoch(), "nodes": s.NumNodes(), "durability": durabilityJSON(s)})
	}))
	mux.Handle("/v1/price-join", timed(func(w http.ResponseWriter, r *http.Request) {
		if !method(w, r, http.MethodPost) {
			return
		}
		var req priceJSON
		if !decode(w, r, &req) {
			return
		}
		res, err := s.PriceJoin(req.query())
		if err != nil {
			fail(w, err)
			return
		}
		reply(w, priceResultJSON(res))
	}))
	mux.Handle("/v1/price-join/batch", timed(func(w http.ResponseWriter, r *http.Request) {
		if !method(w, r, http.MethodPost) {
			return
		}
		var req struct {
			Queries []priceJSON `json:"queries"`
		}
		if !decode(w, r, &req) {
			return
		}
		qs := make([]PriceQuery, len(req.Queries))
		for i, q := range req.Queries {
			qs[i] = q.query()
		}
		results, err := s.PriceJoinBatch(qs)
		if err != nil {
			fail(w, err)
			return
		}
		out := make([]map[string]any, len(results))
		for i, res := range results {
			out[i] = priceResultJSON(res)
		}
		reply(w, map[string]any{"results": out})
	}))
	mux.Handle("/v1/best-response", timed(func(w http.ResponseWriter, r *http.Request) {
		if !method(w, r, http.MethodPost) {
			return
		}
		var req struct {
			Node int `json:"node"`
			priceJSON
		}
		if !decode(w, r, &req) {
			return
		}
		res, err := s.BestResponse(graph.NodeID(req.Node), req.query())
		if err != nil {
			fail(w, err)
			return
		}
		reply(w, priceResultJSON(res))
	}))
	mux.Handle("/v1/metrics", timed(func(w http.ResponseWriter, r *http.Request) {
		if !method(w, r, http.MethodGet) {
			return
		}
		ep, epoch, err := s.Metrics(0)
		if err != nil {
			fail(w, err)
			return
		}
		reply(w, map[string]any{"epoch": epoch, "metrics": ep, "durability": durabilityJSON(s)})
	}))
	mux.HandleFunc("/v1/commit", func(w http.ResponseWriter, r *http.Request) {
		if !method(w, r, http.MethodPost) {
			return
		}
		var req struct {
			Strategy []actionJSON `json:"strategy"`
		}
		if !decode(w, r, &req) {
			return
		}
		strategy := make(core.Strategy, len(req.Strategy))
		for i, a := range req.Strategy {
			strategy[i] = core.Action{Peer: graph.NodeID(a.Peer), Lock: a.Lock}
		}
		id, epoch, err := s.CommitJoin(strategy)
		if err != nil {
			fail(w, err)
			return
		}
		reply(w, map[string]any{"node": int(id), "epoch": epoch})
	})
	mux.HandleFunc("/v1/close", func(w http.ResponseWriter, r *http.Request) {
		if !method(w, r, http.MethodPost) {
			return
		}
		var req struct {
			Node int `json:"node"`
		}
		if !decode(w, r, &req) {
			return
		}
		closed, epoch, err := s.Close(graph.NodeID(req.Node))
		if err != nil {
			fail(w, err)
			return
		}
		reply(w, map[string]any{"closed": closed, "epoch": epoch})
	})
	mux.HandleFunc("/v1/tick", func(w http.ResponseWriter, r *http.Request) {
		if !method(w, r, http.MethodPost) {
			return
		}
		var req struct {
			Arrivals int   `json:"arrivals"`
			Seed     int64 `json:"seed"`
		}
		if !decode(w, r, &req) {
			return
		}
		committed, epoch, err := s.Tick(req.Arrivals, req.Seed)
		if err != nil {
			fail(w, err)
			return
		}
		reply(w, map[string]any{"committed": committed, "epoch": epoch})
	})
	mux.HandleFunc("/v1/refresh", func(w http.ResponseWriter, r *http.Request) {
		if !method(w, r, http.MethodPost) {
			return
		}
		epoch, err := s.Refresh()
		if err != nil {
			fail(w, err)
			return
		}
		reply(w, map[string]any{"epoch": epoch})
	})
	mux.HandleFunc("/v1/set-demand", func(w http.ResponseWriter, r *http.Request) {
		if !method(w, r, http.MethodPost) {
			return
		}
		var req struct {
			P     [][]float64 `json:"p"`
			Rates []float64   `json:"rates"`
		}
		if !decode(w, r, &req) {
			return
		}
		epoch, err := s.SetDemand(&traffic.Demand{P: req.P, Rates: req.Rates})
		if err != nil {
			fail(w, err)
			return
		}
		reply(w, map[string]any{"epoch": epoch})
	})
	mux.HandleFunc("/v1/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		if !method(w, r, http.MethodGet) {
			return
		}
		// The stream holds the read lock end to end; a write deadline
		// bounds how long a stalled client can starve writers.
		// Best-effort: recorders and exotic writers may not support it.
		http.NewResponseController(w).SetWriteDeadline(time.Now().Add(checkpointWriteTimeout)) //nolint:errcheck
		w.Header().Set("Content-Type", "application/octet-stream")
		if err := s.Checkpoint(w); err != nil {
			// Headers may be gone already; the truncated body fails the
			// client's CRC check, which is the integrity story anyway.
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}

// checkpointWriteTimeout bounds the checkpoint stream: generous enough
// for a 10k-node plane (~800 MB) over a slow link, finite so a dead
// client eventually releases the read lock.
const checkpointWriteTimeout = 5 * time.Minute

// durabilityJSON renders the session's durability health for healthz
// and metrics.
func durabilityJSON(s *Session) map[string]any {
	if msg := s.DurabilityStatus(); msg != "" {
		return map[string]any{"status": "degraded", "reason": msg}
	}
	return map[string]any{"status": "ok"}
}

type priceJSON struct {
	Budget     float64 `json:"budget"`
	Lock       float64 `json:"lock"`
	Candidates []int   `json:"candidates"`
	AtEpoch    uint64  `json:"atEpoch"`
}

func (p priceJSON) query() PriceQuery {
	q := PriceQuery{Budget: p.Budget, Lock: p.Lock, AtEpoch: p.AtEpoch}
	if p.Candidates != nil {
		q.Candidates = make([]graph.NodeID, len(p.Candidates))
		for i, c := range p.Candidates {
			q.Candidates[i] = graph.NodeID(c)
		}
	}
	return q
}

type actionJSON struct {
	Peer int     `json:"peer"`
	Lock float64 `json:"lock"`
}

func priceResultJSON(res PriceResult) map[string]any {
	strategy := make([]actionJSON, len(res.Strategy))
	for i, a := range res.Strategy {
		strategy[i] = actionJSON{Peer: int(a.Peer), Lock: a.Lock}
	}
	return map[string]any{
		"epoch":       res.Epoch,
		"strategy":    strategy,
		"objective":   res.Objective,
		"utility":     res.Utility,
		"evaluations": res.Evaluations,
	}
}

func method(w http.ResponseWriter, r *http.Request, want string) bool {
	if r.Method != want {
		http.Error(w, fmt.Sprintf("method %s not allowed", r.Method), http.StatusMethodNotAllowed)
		return false
	}
	return true
}

func decode(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	if err := dec.Decode(into); err != nil {
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

func reply(w http.ResponseWriter, body any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(body); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func fail(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrEpochGone):
		http.Error(w, err.Error(), http.StatusConflict)
	case errors.Is(err, ErrBadQuery):
		http.Error(w, err.Error(), http.StatusBadRequest)
	case errors.Is(err, core.ErrStaleSubstrate):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
