package serve

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"github.com/lightning-creation-games/lcg/internal/wal"
)

// DurableConfig shapes the durability layer: where state lives, how
// eagerly the WAL syncs, and when the background checkpointer runs.
type DurableConfig struct {
	// Dir holds everything: wal-<gen>.log segments and
	// ckpt-<epoch>.bin snapshots side by side.
	Dir string
	// FS is the filesystem seam; nil means the real one. The torture
	// harness injects a fault-scripted MemFS here.
	FS wal.FS
	// Sync is the WAL fsync policy. The zero value (fsync every
	// record) is the no-acknowledged-loss setting.
	Sync wal.SyncPolicy
	// CheckpointInterval triggers a background checkpoint on a timer
	// (0 disables the timer trigger).
	CheckpointInterval time.Duration
	// CheckpointMutations triggers a background checkpoint once that
	// many mutations accumulate since the last one (0 disables the
	// count trigger). With both triggers zero no checkpointer runs;
	// the WAL alone carries durability until Close.
	CheckpointMutations int
	// Retain is how many checkpoint generations survive pruning
	// (minimum and default 2: the newest could always be the one a
	// crash interrupts the fsync of on some other layer's watch).
	Retain int
	// RetryBackoff and MaxRetries bound the checkpointer's response to
	// a failing disk: MaxRetries attempts spaced by RetryBackoff, then
	// the session degrades (keeps serving, reports unhealthy) until
	// the next trigger tries again. Defaults: 250ms, 3.
	RetryBackoff time.Duration
	MaxRetries   int
}

func (c DurableConfig) withDefaults() DurableConfig {
	if c.FS == nil {
		c.FS = wal.OS{}
	}
	if c.Retain < 2 {
		c.Retain = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 250 * time.Millisecond
	}
	if c.MaxRetries < 1 {
		c.MaxRetries = 3
	}
	return c
}

// Durable is a Session wrapped in its durability machinery: a WAL
// receiving every mutation and a background checkpointer that
// periodically compacts the log into an atomic snapshot.
type Durable struct {
	S *Session

	cfg  DurableConfig
	fsys wal.FS
	w    *wal.Writer

	// pending counts mutations since the last durable checkpoint.
	pending atomic.Int64
	notify  chan struct{}
	stop    chan struct{}
	done    chan struct{}
	closed  atomic.Bool

	// Recovered reports what recovery found: the checkpoint epoch it
	// loaded and how many WAL records it replayed on top. Zero values
	// on a fresh open.
	RecoveredCheckpointEpoch uint64
	RecoveredWALRecords      int
}

// Open stands up the durability layer over cfg.Dir. If the directory
// holds a decodable checkpoint, the newest one is loaded and the WAL
// suffix past its epoch is replayed — recovery lands on the exact
// pre-crash durable epoch with zero plane rebuilds. Otherwise seed
// supplies the fresh session and an initial checkpoint is written
// before the WAL opens, so the log is never the only copy of state.
//
// A WAL that fails integrity checks (mid-stream corruption, a replay
// suffix with a gap) refuses to open: silently serving a state that
// lost acknowledged mutations is the one unacceptable outcome.
func Open(dcfg DurableConfig, scfg Config, seed func() (*Session, error)) (*Durable, error) {
	dcfg = dcfg.withDefaults()
	if dcfg.Dir == "" {
		return nil, fmt.Errorf("serve: durable open: empty dir")
	}
	fsys := dcfg.FS
	if err := fsys.MkdirAll(dcfg.Dir); err != nil {
		return nil, fmt.Errorf("serve: durable open: %w", err)
	}
	log, err := wal.ReadAll(fsys, dcfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("serve: durable open: %w", err)
	}

	d := &Durable{cfg: dcfg, fsys: fsys, notify: make(chan struct{}, 1), stop: make(chan struct{}), done: make(chan struct{})}
	epochs, err := checkpointEpochs(fsys, dcfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("serve: durable open: %w", err)
	}
	switch {
	case len(epochs) > 0:
		s, ckptEpoch, err := restoreNewest(fsys, dcfg.Dir, epochs, scfg)
		if err != nil {
			return nil, err
		}
		suffix, err := log.Suffix(ckptEpoch)
		if err != nil {
			return nil, fmt.Errorf("serve: durable open: %w", err)
		}
		s.setReplaying(true)
		for i, rec := range suffix {
			if err := applyRecord(s, rec); err != nil {
				return nil, fmt.Errorf("serve: replay record %d (%s, epoch %d): %w", i, rec.Kind, rec.Epoch, err)
			}
			if got := s.Epoch(); got != rec.Epoch {
				return nil, fmt.Errorf("serve: replay diverged: epoch %d after a record stamped %d", got, rec.Epoch)
			}
		}
		s.setReplaying(false)
		d.S = s
		d.RecoveredCheckpointEpoch = ckptEpoch
		d.RecoveredWALRecords = len(suffix)
	case len(log.Records) > 0:
		return nil, fmt.Errorf("serve: durable open: %s has WAL records but no checkpoint", dcfg.Dir)
	default:
		if seed == nil {
			return nil, fmt.Errorf("serve: durable open: %s is empty and no seed was given", dcfg.Dir)
		}
		s, err := seed()
		if err != nil {
			return nil, err
		}
		d.S = s
		// The initial checkpoint lands before the WAL opens: the log
		// must always be a suffix over a durable base.
		if _, err := d.writeCheckpoint(); err != nil {
			return nil, fmt.Errorf("serve: initial checkpoint: %w", err)
		}
	}

	w, err := wal.Create(fsys, dcfg.Dir, dcfg.Sync)
	if err != nil {
		return nil, fmt.Errorf("serve: durable open: %w", err)
	}
	d.w = w
	d.S.attachDurability(w, d.mutated)
	if dcfg.CheckpointInterval > 0 || dcfg.CheckpointMutations > 0 {
		go d.checkpointLoop()
	} else {
		close(d.done)
	}
	return d, nil
}

// Close stops the checkpointer, takes a final checkpoint (so a clean
// shutdown restarts with an empty replay), and closes the WAL. The
// session itself keeps answering in-memory queries. Idempotent: later
// calls are no-ops.
func (d *Durable) Close() error {
	if !d.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(d.stop)
	<-d.done
	var err error
	if d.pending.Load() > 0 {
		err = d.checkpointOnce()
	}
	if cerr := d.w.Close(); err == nil && cerr != nil {
		err = cerr
	}
	return err
}

// CheckpointNow forces one checkpoint cycle synchronously — the
// shutdown path and tests use it; the background loop runs the same
// cycle.
func (d *Durable) CheckpointNow() error { return d.checkpointOnce() }

// mutated is the session's post-seal ping (called under the write
// lock; must not block).
func (d *Durable) mutated() {
	n := d.pending.Add(1)
	if d.cfg.CheckpointMutations > 0 && n >= int64(d.cfg.CheckpointMutations) {
		select {
		case d.notify <- struct{}{}:
		default:
		}
	}
}

func (d *Durable) checkpointLoop() {
	defer close(d.done)
	var tick <-chan time.Time
	if d.cfg.CheckpointInterval > 0 {
		t := time.NewTicker(d.cfg.CheckpointInterval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-d.stop:
			return
		case <-tick:
			if d.pending.Load() == 0 {
				continue // nothing new; keep the old generation
			}
		case <-d.notify:
		}
		d.checkpointWithRetry()
	}
}

// checkpointWithRetry runs one checkpoint cycle, retrying a failing
// disk with backoff; when the budget runs out the session degrades and
// stays up — the next trigger tries again.
func (d *Durable) checkpointWithRetry() {
	var err error
	for attempt := 0; attempt < d.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			select {
			case <-d.stop:
				return
			case <-time.After(d.cfg.RetryBackoff):
			}
		}
		if err = d.checkpointOnce(); err == nil {
			return
		}
	}
	d.S.setDegraded(fmt.Sprintf("checkpointer: %d attempts failed, last: %v", d.cfg.MaxRetries, err))
}

// checkpointOnce is one full cycle: rotate the WAL (so every sealed
// segment's records are ≤ the snapshot's epoch), write the snapshot
// via temp-file + fsync + atomic rename, then prune the sealed
// segments and stale checkpoint generations the new snapshot subsumes.
func (d *Durable) checkpointOnce() error {
	before := d.pending.Load()
	sealed, err := d.w.Rotate()
	if err != nil {
		return fmt.Errorf("serve: checkpoint rotate: %w", err)
	}
	if _, err := d.writeCheckpoint(); err != nil {
		return err
	}
	// The snapshot is durable: the sealed segments and any older
	// checkpoints are now redundant. Failures here cost only disk
	// space, never correctness — ReadAll tolerates partial prunes.
	d.w.Prune(sealed)
	d.pruneCheckpoints()
	d.pending.Add(-before)
	d.S.clearDegraded()
	return nil
}

// writeCheckpoint streams a snapshot to a temp file, fsyncs, and
// renames it to ckpt-<epoch>.bin — the name is only decided once the
// read lock freezes the epoch, which is why this does not reuse
// wal.AtomicWrite.
func (d *Durable) writeCheckpoint() (uint64, error) {
	tmp := d.cfg.Dir + "/ckpt.tmp"
	f, err := d.fsys.Create(tmp)
	if err != nil {
		return 0, fmt.Errorf("serve: checkpoint create: %w", err)
	}
	epoch, err := d.S.checkpointEpoch(f)
	if err != nil {
		f.Close()
		d.fsys.Remove(tmp)
		return 0, fmt.Errorf("serve: checkpoint write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		d.fsys.Remove(tmp)
		return 0, fmt.Errorf("serve: checkpoint sync: %w", err)
	}
	if err := f.Close(); err != nil {
		d.fsys.Remove(tmp)
		return 0, fmt.Errorf("serve: checkpoint close: %w", err)
	}
	if err := d.fsys.Rename(tmp, ckptPath(d.cfg.Dir, epoch)); err != nil {
		d.fsys.Remove(tmp)
		return 0, fmt.Errorf("serve: checkpoint rename: %w", err)
	}
	return epoch, nil
}

// pruneCheckpoints deletes checkpoint generations beyond Retain,
// oldest first, best-effort.
func (d *Durable) pruneCheckpoints() {
	epochs, err := checkpointEpochs(d.fsys, d.cfg.Dir)
	if err != nil {
		return
	}
	for len(epochs) > d.cfg.Retain {
		d.fsys.Remove(ckptPath(d.cfg.Dir, epochs[0])) //nolint:errcheck
		epochs = epochs[1:]
	}
}

// restoreNewest loads the newest checkpoint that decodes, walking
// backwards past corrupt generations (that is what Retain > 1 buys).
func restoreNewest(fsys wal.FS, dir string, epochs []uint64, scfg Config) (*Session, uint64, error) {
	var lastErr error
	for i := len(epochs) - 1; i >= 0; i-- {
		f, err := fsys.Open(ckptPath(dir, epochs[i]))
		if err != nil {
			lastErr = err
			continue
		}
		s, err := Restore(f, scfg)
		f.Close()
		if err != nil {
			lastErr = err
			continue
		}
		return s, epochs[i], nil
	}
	return nil, 0, fmt.Errorf("serve: no checkpoint in %s decodes: %w", dir, lastErr)
}

// applyRecord replays one WAL record through the session's public
// mutation surface — exactly the code path the original mutation took,
// which is what makes replay byte-exact.
func applyRecord(s *Session, rec wal.Record) error {
	var err error
	switch rec.Kind {
	case wal.KindCommitJoin:
		_, _, err = s.CommitJoin(rec.Strategy)
	case wal.KindClose:
		_, _, err = s.Close(rec.Node)
	case wal.KindTick:
		_, _, err = s.Tick(rec.Arrivals, rec.Seed)
	case wal.KindRefresh:
		_, err = s.Refresh()
	case wal.KindSetDemand:
		_, err = s.SetDemand(rec.Demand)
	default:
		err = fmt.Errorf("unknown kind %d", rec.Kind)
	}
	return err
}

func ckptPath(dir string, epoch uint64) string {
	return fmt.Sprintf("%s/ckpt-%020d.bin", dir, epoch)
}

// checkpointEpochs lists the checkpoint generations in dir, ascending.
func checkpointEpochs(fsys wal.FS, dir string) ([]uint64, error) {
	names, err := fsys.List(dir)
	if err != nil {
		return nil, err
	}
	var epochs []uint64
	for _, name := range names {
		s, ok := strings.CutPrefix(name, "ckpt-")
		if !ok {
			continue
		}
		s, ok = strings.CutSuffix(s, ".bin")
		if !ok || s == "" {
			continue
		}
		epoch, bad := uint64(0), false
		for _, c := range s {
			if c < '0' || c > '9' {
				bad = true
				break
			}
			epoch = epoch*10 + uint64(c-'0')
		}
		if !bad {
			epochs = append(epochs, epoch)
		}
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	return epochs, nil
}

// checkpointEpoch streams the snapshot and reports the epoch it froze
// — one read-lock hold, so the name and the content cannot diverge.
func (s *Session) checkpointEpoch(w io.Writer) (uint64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epoch, s.checkpointLocked(w)
}
