// Package serve is the session server: a long-running process owning a
// live GrowSession and answering pricing queries against frozen
// snapshot epochs while commits proceed underneath — the "serve it"
// surface of the roadmap, in the spirit of Lightning Pool's rpcserver.
//
// # Snapshot-epoch contract
//
// The session is a single-writer, many-reader structure. Every mutation
// (Commit, Close, Tick, Refresh, restore) runs under the write lock,
// re-primes the CSR adjacency cache, and bumps the epoch counter; every
// query runs under the read lock, so the substrate it scans is frozen —
// planes, demand, λ̂ and topology all belong to one epoch for the whole
// query, and the response reports which one. Queries may pin an epoch
// (AtEpoch): if the substrate has moved on, the session refuses with
// ErrEpochGone instead of silently answering against newer state —
// the HTTP layer maps that to 409 so clients re-quote.
//
// Queries never mutate: pricing fans out over zero-cost evaluator
// clones sharing the epoch's planes (the same discipline the market
// engine uses for concurrent bid pricing), and the dirty-window
// machinery underneath guarantees a torn substrate hard-errors rather
// than serving stale prices.
package serve

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/lightning-creation-games/lcg/internal/checkpoint"
	"github.com/lightning-creation-games/lcg/internal/core"
	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/growth"
	"github.com/lightning-creation-games/lcg/internal/par"
	"github.com/lightning-creation-games/lcg/internal/traffic"
	"github.com/lightning-creation-games/lcg/internal/txdist"
	"github.com/lightning-creation-games/lcg/internal/wal"
)

// ErrEpochGone reports a query pinned to an epoch the session has
// committed past. The caller re-reads the current epoch and re-quotes.
var ErrEpochGone = errors.New("serve: pinned epoch superseded by a commit")

// ErrBadQuery reports a malformed query (unknown node, non-positive
// budget, empty strategy where one is required).
var ErrBadQuery = errors.New("serve: invalid query")

// Config shapes a session's economics and tick process.
type Config struct {
	// Params is the base economic profile: committed channels and
	// queries price under it (queries override budget and lock).
	Params core.Params
	// RemoteBalance is granted on the peer side of every committed
	// channel.
	RemoteBalance float64
	// Dist is the transaction distribution of joiners and demand;
	// nil means the modified Zipf with s=1 (the paper's default).
	Dist txdist.Distribution
	// Workers bounds the fan-out of batch queries and substrate folds
	// (≤ 0 selects all cores).
	Workers int

	// TickBudget, TickLock and TickCandidates shape the synthetic
	// arrivals Tick commits: each arrival prices TickCandidates sampled
	// peers (preferential) with the given budget and per-channel lock.
	// Zero values default to budget 6, lock 1, 16 candidates.
	TickBudget     float64
	TickLock       float64
	TickCandidates int

	// QueryTimeout bounds one query request end to end (the HTTP layer
	// wraps query routes in a timeout handler); 0 defaults to 30s,
	// negative disables the deadline. Mutation routes and the
	// checkpoint stream are exempt — a mutation must finish once
	// started, and the stream carries its own write deadline.
	QueryTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Dist == nil {
		c.Dist = txdist.ModifiedZipf{S: 1}
	}
	if c.TickBudget == 0 {
		c.TickBudget = 6
	}
	if c.TickLock == 0 {
		c.TickLock = 1
	}
	if c.TickCandidates == 0 {
		c.TickCandidates = 16
	}
	if c.QueryTimeout == 0 {
		c.QueryTimeout = 30 * time.Second
	}
	return c
}

// Session owns a live GrowSession behind the snapshot-epoch lock.
type Session struct {
	mu   sync.RWMutex
	gs   *core.GrowSession
	cfg  Config
	pool *par.Pool
	// epoch counts committed write batches, starting at 1; every reader
	// observes exactly one epoch per query.
	epoch uint64
	// departed marks nodes whose channels were closed; they stay in the
	// substrate (identifiers are stable) but leave the candidate pool
	// and the metric scans.
	departed []bool

	// wal, when attached, receives one logical record per mutation
	// before the epoch seals; replaying suppresses re-logging while
	// recovery drives mutations through the public methods.
	wal       *wal.Writer
	replaying bool
	// onMutate, when set, pings the background checkpointer after each
	// sealed mutation (non-blocking; set by the durable layer).
	onMutate func()
	// degraded carries the durability layer's failure status ("" =
	// healthy); read lock-free by healthz and metrics.
	degraded atomic.Pointer[string]
}

// NewSession opens a session over gs, which it owns from then on. The
// GrowSession must be clean (not Dirty); demand and λ̂ are re-quoted so
// the first epoch serves coherent prices.
func NewSession(gs *core.GrowSession, cfg Config) (*Session, error) {
	cfg = cfg.withDefaults()
	if gs.Dirty() {
		return nil, core.ErrStaleSubstrate
	}
	gs.SetParallelism(cfg.Workers)
	s := &Session{
		gs:       gs,
		cfg:      cfg,
		pool:     par.NewPool(cfg.Workers),
		epoch:    1,
		departed: make([]bool, gs.NumNodes()),
	}
	gs.Graph().PrimeCSR()
	if err := s.refreshLocked(); err != nil {
		return nil, err
	}
	return s, nil
}

// Restore rebuilds a session from a checkpoint stream: the planes come
// straight off the wire (transposed in memory, a pure permutation), so
// no all-pairs rebuild runs — RebuildCount starts at zero and a
// 10k-node session is serving in seconds.
func Restore(r io.Reader, cfg Config) (*Session, error) {
	cfg = cfg.withDefaults()
	snap, err := checkpoint.Read(r)
	if err != nil {
		return nil, err
	}
	apT := snap.Plane.TransposedParallel(cfg.Workers)
	gs, err := core.RestoreGrowSession(snap.Graph, snap.Plane, apT, cfg.Params, 0, snap.RemoteBalance)
	if err != nil {
		return nil, err
	}
	gs.SetParallelism(cfg.Workers)
	gs.SetDemand(snap.Demand)
	gs.SetRates(snap.Rates)
	epoch := snap.Epoch
	if epoch == 0 {
		epoch = 1 // a never-served snapshot starts at the first epoch
	}
	s := &Session{
		gs:       gs,
		cfg:      cfg,
		pool:     par.NewPool(cfg.Workers),
		epoch:    epoch,
		departed: make([]bool, gs.NumNodes()),
	}
	for _, v := range snap.Departed {
		s.departed[v] = true
	}
	snap.Graph.PrimeCSR()
	return s, nil
}

// Checkpoint streams the session's full state to w as one epoch-frozen
// snapshot: it runs under the read lock, so commits wait and the planes
// on the wire are exactly one epoch's.
func (s *Session) Checkpoint(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.checkpointLocked(w)
}

func (s *Session) checkpointLocked(w io.Writer) error {
	var departed []graph.NodeID
	for v, d := range s.departed {
		if d {
			departed = append(departed, graph.NodeID(v))
		}
	}
	return checkpoint.Write(w, &checkpoint.Snapshot{
		Graph:         s.gs.Graph(),
		RemoteBalance: s.gs.RemoteBalance(),
		Demand:        s.gs.Demand(),
		Rates:         s.gs.Rates(),
		Departed:      departed,
		Plane:         s.gs.AllPairs(),
		Epoch:         s.epoch,
	})
}

// Epoch reports the current snapshot epoch.
func (s *Session) Epoch() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epoch
}

// NumNodes reports the substrate size (departed nodes included — their
// identifiers stay live).
func (s *Session) NumNodes() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.gs.NumNodes()
}

// RebuildCount exposes the underlying session's rebuild odometer — the
// restore acceptance gauge (a restored session must hold it at zero).
func (s *Session) RebuildCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.gs.RebuildCount()
}

// PriceQuery is one price-join request: what would Algorithm 1 choose
// for a fresh arrival with this budget?
type PriceQuery struct {
	// Budget is B_u; Lock is l_1, the per-channel locked amount.
	Budget, Lock float64
	// Candidates restricts the peers considered; nil means every alive
	// node.
	Candidates []graph.NodeID
	// AtEpoch pins the query to a snapshot epoch (0 = current): if the
	// session has committed past it, the query fails with ErrEpochGone.
	AtEpoch uint64
}

// PriceResult is a priced strategy and the epoch it is valid against.
type PriceResult struct {
	Epoch       uint64
	Strategy    core.Strategy
	Objective   float64
	Utility     float64
	Evaluations int
}

func (q PriceQuery) validate(n int) error {
	if q.Budget <= 0 || q.Lock <= 0 {
		return fmt.Errorf("%w: budget %v, lock %v (want positive)", ErrBadQuery, q.Budget, q.Lock)
	}
	for _, v := range q.Candidates {
		if v < 0 || int(v) >= n {
			return fmt.Errorf("%w: candidate %d outside substrate of %d", ErrBadQuery, v, n)
		}
	}
	return nil
}

// PriceJoin prices one fresh arrival against the current epoch.
func (s *Session) PriceJoin(q PriceQuery) (PriceResult, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if err := s.checkEpoch(q.AtEpoch); err != nil {
		return PriceResult{}, err
	}
	return s.priceLocked(q)
}

// PriceJoinBatch prices a whole batch against one frozen epoch,
// fanning out over the worker pool — every result reports the same
// epoch, the batch analogue of the market's concurrent bid pricing.
func (s *Session) PriceJoinBatch(qs []PriceQuery) ([]PriceResult, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, q := range qs {
		if err := s.checkEpoch(q.AtEpoch); err != nil {
			return nil, err
		}
	}
	return par.Collect(s.pool, len(qs), func(i int) (PriceResult, error) {
		return s.priceLocked(qs[i])
	})
}

// priceLocked prices one query under a held read lock. Concurrent calls
// are safe: each builds its own evaluator over the shared frozen planes.
func (s *Session) priceLocked(q PriceQuery) (PriceResult, error) {
	if err := q.validate(s.gs.NumNodes()); err != nil {
		return PriceResult{}, err
	}
	pu := growth.JoinProbs(s.gs.Graph(), graph.InvalidNode, s.cfg.Dist, s.departedMask())
	ev, err := s.gs.Evaluator(pu, s.cfg.Params)
	if err != nil {
		return PriceResult{}, err
	}
	candidates := q.Candidates
	if candidates == nil {
		candidates = s.aliveLocked(graph.InvalidNode)
	}
	res, err := core.Greedy(ev, core.GreedyConfig{
		Budget:       q.Budget,
		Lock:         q.Lock,
		Candidates:   candidates,
		Model:        core.RevenueFixedRate,
		UtilityModel: core.RevenueFixedRate,
	})
	if err != nil {
		return PriceResult{}, err
	}
	return PriceResult{
		Epoch:       s.epoch,
		Strategy:    res.Strategy,
		Objective:   res.Objective,
		Utility:     res.Utility,
		Evaluations: res.Evaluations,
	}, nil
}

// BestResponse quotes the advisory best response of an existing node:
// the strategy Algorithm 1 would pick for v's budget against the
// current epoch. The quote is advisory — v's own channels stay in the
// substrate while it is priced (an exact re-wire would mutate the
// planes, which no query may do), matching the growth engine's
// rewiring approximation.
func (s *Session) BestResponse(v graph.NodeID, q PriceQuery) (PriceResult, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if err := s.checkEpoch(q.AtEpoch); err != nil {
		return PriceResult{}, err
	}
	n := s.gs.NumNodes()
	if v < 0 || int(v) >= n {
		return PriceResult{}, fmt.Errorf("%w: node %d outside substrate of %d", ErrBadQuery, v, n)
	}
	if s.departed[v] {
		return PriceResult{}, fmt.Errorf("%w: node %d departed", ErrBadQuery, v)
	}
	if err := q.validate(n); err != nil {
		return PriceResult{}, err
	}
	pu := growth.JoinProbs(s.gs.Graph(), v, s.cfg.Dist, s.departedMask())
	ev, err := s.gs.Evaluator(pu, s.cfg.Params)
	if err != nil {
		return PriceResult{}, err
	}
	candidates := q.Candidates
	if candidates == nil {
		candidates = s.aliveLocked(v)
	}
	res, err := core.Greedy(ev, core.GreedyConfig{
		Budget:       q.Budget,
		Lock:         q.Lock,
		Candidates:   candidates,
		Model:        core.RevenueFixedRate,
		UtilityModel: core.RevenueFixedRate,
	})
	if err != nil {
		return PriceResult{}, err
	}
	return PriceResult{
		Epoch:       s.epoch,
		Strategy:    res.Strategy,
		Objective:   res.Objective,
		Utility:     res.Utility,
		Evaluations: res.Evaluations,
	}, nil
}

// Metrics computes the epoch metric snapshot over the alive nodes — the
// growth engine's ComputeEpoch against this session's frozen planes.
func (s *Session) Metrics(atEpoch uint64) (growth.Epoch, uint64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if err := s.checkEpoch(atEpoch); err != nil {
		return growth.Epoch{}, 0, err
	}
	ep := growth.ComputeEpoch(s.gs.Graph(), s.gs.AllPairs(), s.aliveLocked(graph.InvalidNode), int(s.epoch))
	return ep, s.epoch, nil
}

// CommitJoin folds a priced strategy into the substrate as a fresh
// arrival and opens the next epoch.
func (s *Session) CommitJoin(strategy core.Strategy) (graph.NodeID, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id, err := s.gs.Commit(strategy)
	if err != nil {
		return graph.InvalidNode, s.epoch, err
	}
	s.departed = append(s.departed, false)
	lerr := s.sealWriteLocked(wal.Record{Kind: wal.KindCommitJoin, Strategy: strategy})
	return id, s.epoch, lerr
}

// Close departs a node: closes every channel, folds the closure into
// the planes decrementally, and opens the next epoch. Readers blocked
// on the lock never observe the dirty window.
func (s *Session) Close(v graph.NodeID) (closed int, epoch uint64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v < 0 || int(v) >= s.gs.NumNodes() || s.departed[v] {
		return 0, s.epoch, fmt.Errorf("%w: node %d not alive", ErrBadQuery, v)
	}
	closed, err = s.gs.CloseNode(v)
	if err != nil {
		return closed, s.epoch, err
	}
	s.gs.FoldClose()
	s.departed[v] = true
	lerr := s.sealWriteLocked(wal.Record{Kind: wal.KindClose, Node: v})
	return closed, s.epoch, lerr
}

// Tick commits a batch of synthetic arrivals — the sustained write load
// the server is benchmarked under. Arrivals are priced sequentially
// (each sees its predecessors, the growth engine's arrival semantics)
// from the given seed, so a tick sequence is reproducible: replaying
// the same seeds after a checkpoint restore reproduces the same
// substrate bit for bit. Returns the number committed.
func (s *Session) Tick(arrivals int, seed int64) (int, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if arrivals < 0 {
		return 0, s.epoch, fmt.Errorf("%w: %d arrivals", ErrBadQuery, arrivals)
	}
	rng := rand.New(rand.NewSource(seed))
	committed := 0
	for i := 0; i < arrivals; i++ {
		pool := s.aliveLocked(graph.InvalidNode)
		candidates := growth.SampleCandidates(rng, s.gs.Graph(), pool, s.cfg.TickCandidates, true)
		pu := growth.JoinProbs(s.gs.Graph(), graph.InvalidNode, s.cfg.Dist, s.departedMask())
		ev, err := s.gs.Evaluator(pu, s.cfg.Params)
		if err != nil {
			return committed, s.epoch, err
		}
		res, err := core.Greedy(ev, core.GreedyConfig{
			Budget:       s.cfg.TickBudget,
			Lock:         s.cfg.TickLock,
			Candidates:   candidates,
			Model:        core.RevenueFixedRate,
			UtilityModel: core.RevenueFixedRate,
		})
		if err != nil {
			return committed, s.epoch, err
		}
		if _, err := s.gs.Commit(res.Strategy); err != nil {
			return committed, s.epoch, err
		}
		s.departed = append(s.departed, false)
		committed++
	}
	lerr := s.sealWriteLocked(wal.Record{Kind: wal.KindTick, Arrivals: arrivals, Seed: seed})
	return committed, s.epoch, lerr
}

// Refresh re-quotes the demand and λ̂ snapshots against the current
// substrate and opens the next epoch — the serve-side spelling of the
// growth loop's periodic refresh.
func (s *Session) Refresh() (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.refreshLocked(); err != nil {
		return s.epoch, err
	}
	lerr := s.sealWriteLocked(wal.Record{Kind: wal.KindRefresh})
	return s.epoch, lerr
}

// SetDemand installs an explicit demand snapshot and opens the next
// epoch — the serving spelling of GrowSession.SetDemand, for operators
// quoting against externally measured demand instead of the synthetic
// refresh. The matrix must be square with matching rates and must not
// outgrow the substrate (it may lag it, like a refresh snapshot).
func (s *Session) SetDemand(d *traffic.Demand) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d == nil {
		return s.epoch, fmt.Errorf("%w: nil demand", ErrBadQuery)
	}
	if len(d.P) > s.gs.NumNodes() {
		return s.epoch, fmt.Errorf("%w: demand covers %d nodes, substrate has %d", ErrBadQuery, len(d.P), s.gs.NumNodes())
	}
	if len(d.Rates) != len(d.P) {
		return s.epoch, fmt.Errorf("%w: %d demand rows but %d rates", ErrBadQuery, len(d.P), len(d.Rates))
	}
	for i, row := range d.P {
		if len(row) != len(d.P) {
			return s.epoch, fmt.Errorf("%w: demand row %d has %d entries, want %d", ErrBadQuery, i, len(row), len(d.P))
		}
	}
	s.gs.SetDemand(d)
	lerr := s.sealWriteLocked(wal.Record{Kind: wal.KindSetDemand, Demand: d})
	return s.epoch, lerr
}

func (s *Session) refreshLocked() error {
	s.gs.SetDemand(growth.BuildDemand(s.gs.Graph(), s.cfg.Dist, s.departedMask()))
	if _, err := s.gs.RefreshRates(s.aliveLocked(graph.InvalidNode)); err != nil {
		return err
	}
	return nil
}

// sealWriteLocked closes a write batch: the mutation's logical record
// goes to the WAL (before the epoch moves — the write-ahead ordering),
// the CSR cache is re-based on the writer's clock (readers must never
// trigger its mutation), and the epoch advances, invalidating pinned
// queries.
//
// A WAL append failure does NOT roll the mutation back — the substrate
// already changed, and readers must never observe changed state under
// an unchanged epoch. The epoch still seals, the session degrades, and
// the caller gets the error so it knows durability is not guaranteed
// for this (otherwise valid) mutation.
func (s *Session) sealWriteLocked(rec wal.Record) error {
	var err error
	if s.wal != nil && !s.replaying {
		rec.Epoch = s.epoch + 1
		if werr := s.wal.Append(rec); werr != nil {
			s.setDegraded(fmt.Sprintf("wal: %s record at epoch %d not durable: %v", rec.Kind, rec.Epoch, werr))
			err = fmt.Errorf("serve: mutation applied but not logged: %w", werr)
		}
	}
	s.gs.Graph().PrimeCSR()
	s.epoch++
	if s.onMutate != nil {
		s.onMutate()
	}
	return err
}

// attachDurability installs the WAL writer and the checkpointer's
// mutation ping. Called by the durable layer before the session serves.
func (s *Session) attachDurability(w *wal.Writer, onMutate func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wal = w
	s.onMutate = onMutate
}

// setReplaying toggles recovery mode: mutations apply without
// re-logging (their records are already in the WAL being replayed).
func (s *Session) setReplaying(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.replaying = on
}

// DurabilityStatus reports the durability layer's health: "" while
// healthy (or when the session runs without a WAL), otherwise a
// description of what is failing. A degraded session keeps serving —
// reads are unaffected and mutations still apply — but recent
// mutations may not survive a crash.
func (s *Session) DurabilityStatus() string {
	if msg := s.degraded.Load(); msg != nil {
		return *msg
	}
	return ""
}

func (s *Session) setDegraded(msg string) {
	s.degraded.Store(&msg)
}

func (s *Session) clearDegraded() {
	s.degraded.Store(nil)
}

func (s *Session) checkEpoch(at uint64) error {
	if at != 0 && at != s.epoch {
		return fmt.Errorf("%w: pinned %d, current %d", ErrEpochGone, at, s.epoch)
	}
	return nil
}

// aliveLocked lists the alive nodes, excluding one (InvalidNode excludes
// nothing).
func (s *Session) aliveLocked(except graph.NodeID) []graph.NodeID {
	out := make([]graph.NodeID, 0, s.gs.NumNodes())
	for v := 0; v < s.gs.NumNodes(); v++ {
		if !s.departed[v] && graph.NodeID(v) != except {
			out = append(out, graph.NodeID(v))
		}
	}
	return out
}

// departedMask returns the departed slice, or nil when nothing has
// departed (JoinProbs and BuildDemand skip the masking pass entirely).
func (s *Session) departedMask() []bool {
	for _, d := range s.departed {
		if d {
			return s.departed
		}
	}
	return nil
}
