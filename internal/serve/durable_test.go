package serve

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"github.com/lightning-creation-games/lcg/internal/core"
	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/traffic"
	"github.com/lightning-creation-games/lcg/internal/wal"
)

const tortureDir = "/state"

func tortureServeConfig() Config {
	return Config{Params: testParams(), RemoteBalance: 1, Workers: 2}
}

// tortureSeed builds the deterministic genesis session every torture
// participant (durable run, recovery, oracle) starts from.
func tortureSeed() (*Session, error) {
	g := graph.BarabasiAlbert(48, 2, 1, rand.New(rand.NewSource(42)))
	gs, err := core.NewGrowSession(g, testParams(), 48+512, 1)
	if err != nil {
		return nil, err
	}
	return NewSession(gs, tortureServeConfig())
}

func tortureDurableConfig(fsys wal.FS) DurableConfig {
	return DurableConfig{
		Dir:                 tortureDir,
		FS:                  fsys,
		Sync:                wal.SyncPolicy{Every: 1},
		CheckpointMutations: 5,
		RetryBackoff:        time.Millisecond,
		MaxRetries:          2,
	}
}

// testAlive snapshots the alive node list (in-package peek).
func testAlive(s *Session) []graph.NodeID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.aliveLocked(graph.InvalidNode)
}

// applyTortureMutation applies deterministic mutation i to s: a lumpy
// mix of every WAL record kind, every choice derived from i and the
// session's (deterministic) state. The same function drives the
// durable session, the recovered session, and the never-crashed
// oracle, so all walk the identical trajectory.
func applyTortureMutation(i int, s *Session) error {
	if i%13 == 6 {
		k := min(s.NumNodes(), 24)
		p := make([][]float64, k)
		for r := range p {
			row := make([]float64, k)
			for c := range row {
				row[c] = 1 / float64(k)
			}
			p[r] = row
		}
		rates := make([]float64, k)
		for r := range rates {
			rates[r] = 0.5 + float64((i+r)%3)
		}
		_, err := s.SetDemand(&traffic.Demand{P: p, Rates: rates})
		return err
	}
	if i%7 == 3 {
		if alive := testAlive(s); len(alive) > 8 {
			_, _, err := s.Close(alive[(i*5+1)%len(alive)])
			return err
		}
	}
	if i%5 == 2 {
		_, err := s.Refresh()
		return err
	}
	if i%11 == 4 {
		alive := testAlive(s)
		strategy := core.Strategy{
			{Peer: alive[i%len(alive)], Lock: 1},
			{Peer: alive[(i+3)%len(alive)], Lock: 0.5},
		}
		if strategy[0].Peer == strategy[1].Peer {
			strategy = strategy[:1]
		}
		_, _, err := s.CommitJoin(strategy)
		return err
	}
	_, _, err := s.Tick(1+i%2, int64(i)*31+7)
	return err
}

// runTortureTraffic opens a durable session over ffs and drives the
// mutation script until it finishes or the injected crash fires. It
// returns how many mutations were acknowledged (returned nil).
func runTortureTraffic(t *testing.T, ffs *wal.FaultFS, mutations int) int {
	t.Helper()
	d, err := Open(tortureDurableConfig(ffs), tortureServeConfig(), tortureSeed)
	if err != nil {
		if !ffs.Crashed() {
			t.Fatalf("Open failed without a crash: %v", err)
		}
		return 0
	}
	acked := 0
	for i := 0; i < mutations; i++ {
		if err := applyTortureMutation(i, d.S); err != nil {
			if !ffs.Crashed() && !errors.Is(err, wal.ErrInjected) {
				t.Fatalf("mutation %d failed without a crash: %v", i, err)
			}
			break
		}
		acked++
	}
	d.Close() //nolint:errcheck — post-crash close fails by design
	return acked
}

// recoverAndVerify recovers from the surviving bytes in mem and checks
// the full durability contract against a never-crashed oracle.
func recoverAndVerify(t *testing.T, mem *wal.MemFS, acked, mutations int) {
	t.Helper()
	rec, err := Open(tortureDurableConfig(mem), tortureServeConfig(), tortureSeed)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer rec.Close() //nolint:errcheck

	// fsync-every-record: every acknowledged mutation survived; at most
	// the single in-flight unacknowledged one may have landed too.
	epoch := rec.S.Epoch()
	if epoch < uint64(acked)+1 || epoch > uint64(acked)+2 {
		t.Fatalf("recovered epoch %d, want %d or %d (acked %d)", epoch, acked+1, acked+2, acked)
	}
	if n := rec.S.RebuildCount(); n != 0 {
		t.Fatalf("recovery rebuilt %d planes, want 0", n)
	}

	// The oracle replays the same script on a never-crashed session up
	// to the recovered epoch; the two checkpoints must be byte-equal.
	oracle, err := tortureSeed()
	if err != nil {
		t.Fatalf("oracle seed: %v", err)
	}
	replayed := int(epoch) - 1
	for i := 0; i < replayed; i++ {
		if err := applyTortureMutation(i, oracle); err != nil {
			t.Fatalf("oracle mutation %d: %v", i, err)
		}
	}
	requireEqualCheckpoints(t, oracle, rec.S, "after recovery")

	// And the recovered session keeps walking the oracle's trajectory.
	for i := replayed; i < mutations; i++ {
		if err := applyTortureMutation(i, oracle); err != nil {
			t.Fatalf("oracle mutation %d: %v", i, err)
		}
		if err := applyTortureMutation(i, rec.S); err != nil {
			t.Fatalf("post-recovery mutation %d: %v", i, err)
		}
	}
	requireEqualCheckpoints(t, oracle, rec.S, "after post-recovery traffic")
}

func requireEqualCheckpoints(t *testing.T, a, b *Session, when string) {
	t.Helper()
	if ae, be := a.Epoch(), b.Epoch(); ae != be {
		t.Fatalf("%s: oracle epoch %d, recovered epoch %d", when, ae, be)
	}
	var abuf, bbuf bytes.Buffer
	if err := a.Checkpoint(&abuf); err != nil {
		t.Fatalf("%s: oracle checkpoint: %v", when, err)
	}
	if err := b.Checkpoint(&bbuf); err != nil {
		t.Fatalf("%s: recovered checkpoint: %v", when, err)
	}
	if !bytes.Equal(abuf.Bytes(), bbuf.Bytes()) {
		t.Fatalf("%s: checkpoints differ (%d vs %d bytes)", when, abuf.Len(), bbuf.Len())
	}
}

// TestCrashTortureRecovery is the fault-injection acceptance test: a
// dry run measures the filesystem-operation envelope, then each trial
// hard-kills the process model at a chosen operation — seeded-random
// points plus aimed mid-append and mid-rename kills — recovers from
// the surviving bytes, and requires the recovered substrate byte-equal
// to a never-crashed oracle, with zero plane rebuilds and no
// acknowledged mutation lost.
func TestCrashTortureRecovery(t *testing.T) {
	const mutations = 40
	dry := wal.NewFaultFS(wal.NewMemFS(), rand.New(rand.NewSource(1)), 0)
	acked := runTortureTraffic(t, dry, mutations)
	if acked != mutations {
		t.Fatalf("dry run acknowledged %d/%d mutations", acked, mutations)
	}
	ops := dry.Ops()
	if len(ops) == 0 {
		t.Fatal("dry run performed no filesystem operations")
	}

	// Aimed kill points: a WAL segment append and a checkpoint rename.
	aimed := map[string]int{}
	for i, op := range ops {
		if strings.HasPrefix(op, "write ") && strings.Contains(op, "/wal-") && aimed["mid-append"] == 0 && i > len(ops)/3 {
			aimed["mid-append"] = i + 1
		}
		if strings.HasPrefix(op, "rename ") && strings.Contains(op, "ckpt-") && aimed["mid-rename"] == 0 && i > len(ops)/3 {
			aimed["mid-rename"] = i + 1
		}
	}
	if aimed["mid-append"] == 0 || aimed["mid-rename"] == 0 {
		t.Fatalf("op envelope has no aimable append/rename past warmup: %v", aimed)
	}

	trials := map[string]int{}
	for name, at := range aimed {
		trials[name] = at
	}
	rng := rand.New(rand.NewSource(99))
	randomTrials := 10
	if testing.Short() {
		randomTrials = 3
	}
	for i := 0; i < randomTrials; i++ {
		at := 1 + rng.Intn(len(ops))
		trials[fmt.Sprintf("random-%d", at)] = at
	}

	for name, at := range trials {
		t.Run(name, func(t *testing.T) {
			mem := wal.NewMemFS()
			ffs := wal.NewFaultFS(mem, rand.New(rand.NewSource(int64(at))), at)
			acked := runTortureTraffic(t, ffs, mutations)
			if !ffs.Crashed() {
				// Scheduling moved the envelope; the trial degenerates
				// to a clean run, which must still recover exactly.
				t.Logf("crash point %d beyond this run's envelope", at)
			}
			ffs.ClearCrash()
			recoverAndVerify(t, mem, acked, mutations)
		})
	}
}

// TestDurableCheckpointerCompactsAndRecovers drives the no-fault path:
// the mutation-count trigger checkpoints in the background, prunes
// sealed WAL segments and old generations, and a clean reopen replays
// only the tail.
func TestDurableCheckpointerCompactsAndRecovers(t *testing.T) {
	mem := wal.NewMemFS()
	d, err := Open(tortureDurableConfig(mem), tortureServeConfig(), tortureSeed)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 12; i++ {
		if err := applyTortureMutation(i, d.S); err != nil {
			t.Fatalf("mutation %d: %v", i, err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	epochs, err := checkpointEpochs(mem, tortureDir)
	if err != nil {
		t.Fatalf("checkpointEpochs: %v", err)
	}
	if len(epochs) == 0 || len(epochs) > 2 {
		t.Fatalf("retained %d checkpoint generations, want 1-2 (retain 2)", len(epochs))
	}
	if newest := epochs[len(epochs)-1]; newest != 13 {
		t.Fatalf("newest checkpoint at epoch %d, want 13", newest)
	}

	rec, err := Open(tortureDurableConfig(mem), tortureServeConfig(), nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer rec.Close() //nolint:errcheck
	if rec.S.Epoch() != 13 || rec.RecoveredWALRecords != 0 {
		t.Fatalf("reopen landed at epoch %d with %d replayed records, want 13 and 0",
			rec.S.Epoch(), rec.RecoveredWALRecords)
	}
	oracle, err := tortureSeed()
	if err != nil {
		t.Fatalf("oracle seed: %v", err)
	}
	for i := 0; i < 12; i++ {
		if err := applyTortureMutation(i, oracle); err != nil {
			t.Fatalf("oracle mutation %d: %v", i, err)
		}
	}
	requireEqualCheckpoints(t, oracle, rec.S, "after clean reopen")
}

// TestDurableDegradesAndHeals pins the graceful-degradation contract:
// a transiently failing disk degrades the session (mutations still
// apply, reads keep serving, healthz reports it) and the next
// successful checkpoint cycle clears the status. The surviving state
// still recovers exactly, because the checkpoint covers the mutations
// whose WAL records were lost.
func TestDurableDegradesAndHeals(t *testing.T) {
	mem := wal.NewMemFS()
	ffs := wal.NewFaultFS(mem, rand.New(rand.NewSource(7)), 0)
	cfg := tortureDurableConfig(ffs)
	cfg.CheckpointMutations = 0 // no background loop; checkpoints are manual
	d, err := Open(cfg, tortureServeConfig(), tortureSeed)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if got := d.S.DurabilityStatus(); got != "" {
		t.Fatalf("fresh session reports degraded: %q", got)
	}

	// The next filesystem operation is the first Tick's WAL append.
	ffs.FailAt(ffs.Steps() + 1)
	if _, _, err := d.S.Tick(1, 1); !errors.Is(err, wal.ErrInjected) {
		t.Fatalf("tick over failing disk: err = %v, want ErrInjected", err)
	}
	if got := d.S.DurabilityStatus(); got == "" {
		t.Fatal("append failure did not degrade the session")
	}
	// The writer's error is sticky (a gapped log must never form), so
	// the next mutation still applies but still reports not-durable.
	if _, _, err := d.S.Tick(1, 2); err == nil {
		t.Fatal("sticky WAL error cleared without a rotate")
	}
	if got := d.S.Epoch(); got != 3 {
		t.Fatalf("epoch %d after two applied-but-unlogged ticks, want 3", got)
	}

	// A checkpoint cycle rotates past the sticky error, captures the
	// unlogged mutations in the snapshot, and clears the degradation.
	if err := d.CheckpointNow(); err != nil {
		t.Fatalf("CheckpointNow: %v", err)
	}
	if got := d.S.DurabilityStatus(); got != "" {
		t.Fatalf("still degraded after a successful checkpoint: %q", got)
	}
	if _, _, err := d.S.Tick(1, 3); err != nil {
		t.Fatalf("tick after heal: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	rec, err := Open(tortureDurableConfig(mem), tortureServeConfig(), nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer rec.Close() //nolint:errcheck
	oracle, err := tortureSeed()
	if err != nil {
		t.Fatalf("oracle seed: %v", err)
	}
	for _, seed := range []int64{1, 2, 3} {
		if _, _, err := oracle.Tick(1, seed); err != nil {
			t.Fatalf("oracle tick %d: %v", seed, err)
		}
	}
	requireEqualCheckpoints(t, oracle, rec.S, "after degrade-heal cycle")
}
