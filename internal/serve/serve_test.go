package serve

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"github.com/lightning-creation-games/lcg/internal/checkpoint"
	"github.com/lightning-creation-games/lcg/internal/core"
	"github.com/lightning-creation-games/lcg/internal/graph"
)

func testParams() core.Params {
	return core.Params{OnChainCost: 1, OppCostRate: 0.05, FAvg: 0.5, FeePerHop: 0.5, OwnRate: 1}
}

func newTestSession(t testing.TB, n int, seed int64) *Session {
	t.Helper()
	g := graph.BarabasiAlbert(n, 2, 1, rand.New(rand.NewSource(seed)))
	gs, err := core.NewGrowSession(g, testParams(), n+256, 1)
	if err != nil {
		t.Fatalf("NewGrowSession: %v", err)
	}
	s, err := NewSession(gs, Config{Params: testParams(), RemoteBalance: 1, Workers: 2})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	return s
}

func TestPriceJoinDeterministicWithinEpoch(t *testing.T) {
	s := newTestSession(t, 30, 1)
	q := PriceQuery{Budget: 6, Lock: 1}
	a, err := s.PriceJoin(q)
	if err != nil {
		t.Fatalf("PriceJoin: %v", err)
	}
	if len(a.Strategy) == 0 {
		t.Fatal("PriceJoin returned an empty strategy on a priced substrate")
	}
	b, err := s.PriceJoin(q)
	if err != nil {
		t.Fatalf("PriceJoin: %v", err)
	}
	if a.Epoch != b.Epoch || a.Objective != b.Objective || len(a.Strategy) != len(b.Strategy) {
		t.Fatalf("same-epoch queries diverged: %+v vs %+v", a, b)
	}
	// The batch surface must agree with the single surface bit for bit.
	batch, err := s.PriceJoinBatch([]PriceQuery{q, q, q})
	if err != nil {
		t.Fatalf("PriceJoinBatch: %v", err)
	}
	for i, res := range batch {
		if res.Objective != a.Objective || res.Utility != a.Utility {
			t.Fatalf("batch item %d diverged from single query: %+v vs %+v", i, res, a)
		}
	}
}

func TestEpochPinning(t *testing.T) {
	s := newTestSession(t, 20, 2)
	start := s.Epoch()
	if _, err := s.PriceJoin(PriceQuery{Budget: 4, Lock: 1, AtEpoch: start}); err != nil {
		t.Fatalf("pinned query at current epoch: %v", err)
	}
	if _, _, err := s.Tick(2, 99); err != nil {
		t.Fatalf("Tick: %v", err)
	}
	if s.Epoch() == start {
		t.Fatal("Tick did not advance the epoch")
	}
	if _, err := s.PriceJoin(PriceQuery{Budget: 4, Lock: 1, AtEpoch: start}); !errors.Is(err, ErrEpochGone) {
		t.Fatalf("superseded pin: err = %v, want ErrEpochGone", err)
	}
	if _, err := s.PriceJoinBatch([]PriceQuery{{Budget: 4, Lock: 1, AtEpoch: start}}); !errors.Is(err, ErrEpochGone) {
		t.Fatalf("superseded batch pin: err = %v, want ErrEpochGone", err)
	}
	if _, _, err := s.Metrics(start); !errors.Is(err, ErrEpochGone) {
		t.Fatalf("superseded metrics pin: err = %v, want ErrEpochGone", err)
	}
	if _, err := s.PriceJoin(PriceQuery{Budget: 4, Lock: 1}); err != nil {
		t.Fatalf("unpinned query after commit: %v", err)
	}
}

func TestQueryValidation(t *testing.T) {
	s := newTestSession(t, 10, 3)
	for _, q := range []PriceQuery{
		{Budget: 0, Lock: 1},
		{Budget: 4, Lock: -1},
		{Budget: 4, Lock: 1, Candidates: []graph.NodeID{99}},
	} {
		if _, err := s.PriceJoin(q); !errors.Is(err, ErrBadQuery) {
			t.Fatalf("PriceJoin(%+v): err = %v, want ErrBadQuery", q, err)
		}
	}
	if _, err := s.BestResponse(99, PriceQuery{Budget: 4, Lock: 1}); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("BestResponse(99): err = %v, want ErrBadQuery", err)
	}
	if _, _, err := s.Close(99); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("Close(99): err = %v, want ErrBadQuery", err)
	}
}

func TestCloseDepartsNode(t *testing.T) {
	s := newTestSession(t, 16, 4)
	closed, _, err := s.Close(3)
	if err != nil || closed == 0 {
		t.Fatalf("Close(3) = (%d, %v), want real closures", closed, err)
	}
	if s.RebuildCount() != 0 {
		t.Fatalf("close paid %d rebuilds, want 0 (decremental fold)", s.RebuildCount())
	}
	// A departed node can no longer be closed or quoted.
	if _, _, err := s.Close(3); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("double Close: err = %v, want ErrBadQuery", err)
	}
	if _, err := s.BestResponse(3, PriceQuery{Budget: 4, Lock: 1}); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("BestResponse on departed node: err = %v, want ErrBadQuery", err)
	}
	// Queries keep serving, and pricing never offers the departed node.
	res, err := s.PriceJoin(PriceQuery{Budget: 6, Lock: 1})
	if err != nil {
		t.Fatalf("PriceJoin after close: %v", err)
	}
	for _, a := range res.Strategy {
		if a.Peer == 3 {
			t.Fatal("pricing offered a channel to a departed node")
		}
	}
	ep, _, err := s.Metrics(0)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if ep.Nodes != 15 {
		t.Fatalf("metrics saw %d alive nodes, want 15", ep.Nodes)
	}
}

func TestBestResponseQuotes(t *testing.T) {
	s := newTestSession(t, 24, 5)
	res, err := s.BestResponse(5, PriceQuery{Budget: 6, Lock: 1})
	if err != nil {
		t.Fatalf("BestResponse: %v", err)
	}
	for _, a := range res.Strategy {
		if a.Peer == 5 {
			t.Fatal("best response proposed a self-channel")
		}
	}
}

// TestConcurrentQueriesAndCommits is the tentpole's race lockdown:
// readers hammer every query surface while the writer commits ticks and
// closures underneath. Run with -race; correctness assertion is that
// every query sees a coherent epoch and no query ever errors except
// with ErrEpochGone (from deliberate pinning).
func TestConcurrentQueriesAndCommits(t *testing.T) {
	s := newTestSession(t, 40, 6)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch (w + i) % 4 {
				case 0:
					if _, err := s.PriceJoin(PriceQuery{Budget: 5, Lock: 1}); err != nil {
						t.Errorf("PriceJoin: %v", err)
						return
					}
				case 1:
					if _, err := s.PriceJoinBatch([]PriceQuery{{Budget: 3, Lock: 1}, {Budget: 7, Lock: 1}}); err != nil {
						t.Errorf("PriceJoinBatch: %v", err)
						return
					}
				case 2:
					if _, _, err := s.Metrics(0); err != nil {
						t.Errorf("Metrics: %v", err)
						return
					}
				case 3:
					// Pinned to the epoch read one instant earlier: must
					// either succeed or refuse with ErrEpochGone, never
					// answer against a different epoch.
					at := s.Epoch()
					res, err := s.PriceJoin(PriceQuery{Budget: 5, Lock: 1, AtEpoch: at})
					if err != nil && !errors.Is(err, ErrEpochGone) {
						t.Errorf("pinned PriceJoin: %v", err)
						return
					}
					if err == nil && res.Epoch != at {
						t.Errorf("pinned query answered epoch %d, pinned %d", res.Epoch, at)
						return
					}
				}
			}
		}(w)
	}
	for i := 0; i < 12; i++ {
		if _, _, err := s.Tick(2, int64(i)); err != nil {
			t.Fatalf("Tick %d: %v", i, err)
		}
		if i%4 == 3 {
			if _, _, err := s.Close(graph.NodeID(i)); err != nil {
				t.Fatalf("Close %d: %v", i, err)
			}
		}
		if i%5 == 4 {
			if _, err := s.Refresh(); err != nil {
				t.Fatalf("Refresh: %v", err)
			}
		}
	}
	close(stop)
	wg.Wait()
	if s.RebuildCount() != 0 {
		t.Fatalf("commit/close load paid %d rebuilds, want 0", s.RebuildCount())
	}
}

// TestCheckpointRestoreRequery is the mid-run round-trip lockdown: a
// session is checkpointed mid-sequence, restored, and both sessions
// replay the identical remaining tick sequence — the surviving planes,
// queries and metrics must match bit for bit, and the restored session
// must never pay an all-pairs rebuild.
func TestCheckpointRestoreRequery(t *testing.T) {
	s := newTestSession(t, 32, 7)
	for i := 0; i < 3; i++ {
		if _, _, err := s.Tick(3, int64(i)); err != nil {
			t.Fatalf("Tick: %v", err)
		}
	}
	if _, _, err := s.Close(2); err != nil {
		t.Fatalf("Close: %v", err)
	}

	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	restored, err := Restore(bytes.NewReader(buf.Bytes()), Config{Params: testParams(), Workers: 2})
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if restored.RebuildCount() != 0 {
		t.Fatalf("restore paid %d rebuilds, want 0", restored.RebuildCount())
	}
	// The departed mask rode along in the checkpoint: node 2 is still
	// departed on the restored side, so candidate pools, demand masks
	// and rng-driven replays line up exactly.
	if _, _, err := restored.Close(2); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("Close on restored-departed node: err = %v, want ErrBadQuery", err)
	}
	q := PriceQuery{Budget: 6, Lock: 1}
	want, err := s.PriceJoin(q)
	if err != nil {
		t.Fatalf("PriceJoin(original): %v", err)
	}
	got, err := restored.PriceJoin(q)
	if err != nil {
		t.Fatalf("PriceJoin(restored): %v", err)
	}
	if want.Objective != got.Objective || want.Utility != got.Utility || len(want.Strategy) != len(got.Strategy) {
		t.Fatalf("restored quote diverged: %+v vs %+v", got, want)
	}
	for i := range want.Strategy {
		if want.Strategy[i] != got.Strategy[i] {
			t.Fatalf("restored strategy[%d] = %+v, want %+v", i, got.Strategy[i], want.Strategy[i])
		}
	}

	// Replay the identical remaining sequence on both and compare the
	// planes byte for byte.
	for i := 100; i < 104; i++ {
		if _, _, err := s.Tick(2, int64(i)); err != nil {
			t.Fatalf("Tick(original): %v", err)
		}
		if _, _, err := restored.Tick(2, int64(i)); err != nil {
			t.Fatalf("Tick(restored): %v", err)
		}
	}
	var a, b bytes.Buffer
	if err := s.Checkpoint(&a); err != nil {
		t.Fatalf("Checkpoint(original): %v", err)
	}
	if err := restored.Checkpoint(&b); err != nil {
		t.Fatalf("Checkpoint(restored): %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("continued runs diverged: checkpoints not byte-identical")
	}
	if restored.RebuildCount() != 0 {
		t.Fatalf("restored session paid %d rebuilds during replay, want 0", restored.RebuildCount())
	}
}

// TestCheckpointRestore10k is the scale acceptance gate: at n=10000 the
// substrate round-trips the planes bit-identically through the binary
// codec, and the restored session starts serving with zero all-pairs
// rebuilds. Short mode skips it (CI's race step); the full tier-1 run
// pays it once.
func TestCheckpointRestore10k(t *testing.T) {
	if testing.Short() {
		t.Skip("n=10000 round trip: minutes of all-pairs build; run without -short")
	}
	const n = 10000
	g := graph.BarabasiAlbert(n, 2, 1, rand.New(rand.NewSource(42)))
	ap := g.AllPairsBFSParallel(0)
	snap := &checkpoint.Snapshot{
		Graph:         g,
		RemoteBalance: 1,
		Rates:         map[graph.NodeID]float64{1: 0.5, 9999: 2.25},
		Plane:         ap,
	}
	var buf bytes.Buffer
	if err := checkpoint.Write(&buf, snap); err != nil {
		t.Fatalf("Write: %v", err)
	}
	t.Logf("checkpoint size at n=%d: %d MiB", n, buf.Len()>>20)
	got, err := checkpoint.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Plane.N != n || got.Plane.Stride != n {
		t.Fatalf("plane dims %d/%d, want %d/%d", got.Plane.N, got.Plane.Stride, n, n)
	}
	for s := 0; s < n; s++ {
		if !bytesEqualU16(got.Plane.DistRow(s), ap.DistRow(s)) || !bytesEqualF64(got.Plane.SigmaRow(s), ap.SigmaRow(s)) {
			t.Fatalf("plane row %d not bit-identical after round trip", s)
		}
	}
	apT := got.Plane.TransposedParallel(0)
	gs, err := core.RestoreGrowSession(got.Graph, got.Plane, apT, testParams(), n+16, got.RemoteBalance)
	if err != nil {
		t.Fatalf("RestoreGrowSession: %v", err)
	}
	if gs.RebuildCount() != 0 {
		t.Fatalf("restore paid %d rebuilds, want 0", gs.RebuildCount())
	}
	// The restored session serves and commits immediately.
	if _, err := gs.Commit(core.Strategy{{Peer: 0, Lock: 1}}); err != nil {
		t.Fatalf("Commit on restored session: %v", err)
	}
	if gs.RebuildCount() != 0 {
		t.Fatalf("commit on restored session paid %d rebuilds, want 0", gs.RebuildCount())
	}
}

func bytesEqualU16(a, b []uint16) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func bytesEqualF64(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
