package lcg

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
)

func TestNetworkBuilding(t *testing.T) {
	n := NewNetwork()
	a := n.AddUser()
	b := n.AddUser()
	n.AddUsers(2)
	if n.NumUsers() != 4 {
		t.Fatalf("NumUsers = %d, want 4", n.NumUsers())
	}
	if err := n.AddChannel(a, b, 5, 5); err != nil {
		t.Fatalf("AddChannel: %v", err)
	}
	if !n.HasChannel(a, b) || !n.HasChannel(b, a) {
		t.Fatal("channel not visible in both directions")
	}
	if n.NumChannels() != 1 {
		t.Fatalf("NumChannels = %d, want 1", n.NumChannels())
	}
	if n.Degree(a) != 1 {
		t.Fatalf("Degree = %d, want 1", n.Degree(a))
	}
	if err := n.RemoveChannel(a, b); err != nil {
		t.Fatalf("RemoveChannel: %v", err)
	}
	if n.HasChannel(a, b) {
		t.Fatal("channel survived removal")
	}
	if err := n.AddChannel(a, a, 1, 1); !errors.Is(err, ErrBadInput) {
		t.Fatalf("self channel error = %v", err)
	}
	if err := n.RemoveChannel(a, b); !errors.Is(err, ErrBadInput) {
		t.Fatalf("missing channel error = %v", err)
	}
}

func TestNetworkClone(t *testing.T) {
	n := Star(3, 1)
	c := n.Clone()
	if err := c.RemoveChannel(0, 1); err != nil {
		t.Fatalf("RemoveChannel: %v", err)
	}
	if !n.HasChannel(0, 1) {
		t.Fatal("clone mutation affected original")
	}
}

func TestTopologyConstructors(t *testing.T) {
	tests := []struct {
		name         string
		n            *Network
		wantUsers    int
		wantChannels int
	}{
		{name: "star", n: Star(5, 1), wantUsers: 6, wantChannels: 5},
		{name: "path", n: PathNetwork(4, 1), wantUsers: 4, wantChannels: 3},
		{name: "circle", n: Circle(5, 1), wantUsers: 5, wantChannels: 5},
		{name: "complete", n: Complete(4, 1), wantUsers: 4, wantChannels: 6},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.n.NumUsers() != tt.wantUsers || tt.n.NumChannels() != tt.wantChannels {
				t.Fatalf("got %d users %d channels, want %d/%d",
					tt.n.NumUsers(), tt.n.NumChannels(), tt.wantUsers, tt.wantChannels)
			}
		})
	}
	ba := BarabasiAlbert(20, 2, 1, 7)
	if ba.NumUsers() != 20 {
		t.Fatalf("BA users = %d", ba.NumUsers())
	}
	if _, conn := ba.Diameter(); !conn {
		t.Fatal("BA network disconnected")
	}
	er := ErdosRenyi(10, 0.4, 1, 7)
	if _, conn := er.Diameter(); !conn {
		t.Fatal("ER network disconnected")
	}
}

func TestJoinPlannerPricing(t *testing.T) {
	n := Star(5, 10)
	p, err := NewJoinPlanner(n, WithZipf(1.5))
	if err != nil {
		t.Fatalf("NewJoinPlanner: %v", err)
	}
	s := Strategy{{Peer: 0, Lock: 4}}
	rev := p.Revenue(s)
	fees := p.Fees(s)
	cost := p.Cost(s)
	if rev < 0 || fees <= 0 || cost <= 0 {
		t.Fatalf("components rev=%v fees=%v cost=%v", rev, fees, cost)
	}
	if got := p.Utility(s); math.Abs(got-(rev-fees-cost)) > 1e-9 {
		t.Fatalf("Utility = %v, want %v", got, rev-fees-cost)
	}
	// Disconnected strategy.
	if got := p.Utility(nil); !math.IsInf(got, -1) {
		t.Fatalf("Utility(∅) = %v, want −Inf", got)
	}
}

func TestJoinPlannerAlgorithms(t *testing.T) {
	n := BarabasiAlbert(14, 2, 10, 3)
	p, err := NewJoinPlanner(n, WithParams(Params{
		OnChainCost: 1,
		OppCostRate: 0.02,
		FAvg:        1,
		FeePerHop:   0.2,
		OwnRate:     2,
	}))
	if err != nil {
		t.Fatalf("NewJoinPlanner: %v", err)
	}
	greedy, err := p.Greedy(6, 1)
	if err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	if len(greedy.Strategy) == 0 {
		t.Fatal("greedy returned no channels")
	}
	if greedy.Evaluations == 0 {
		t.Fatal("no evaluations recorded")
	}
	disc, err := p.DiscreteSearch(6, 1)
	if err != nil {
		t.Fatalf("DiscreteSearch: %v", err)
	}
	if disc.Objective < greedy.Objective-1e-9 {
		t.Fatalf("discrete %v < greedy %v", disc.Objective, greedy.Objective)
	}
	cont, err := p.ContinuousSearch(6)
	if err != nil {
		t.Fatalf("ContinuousSearch: %v", err)
	}
	if len(cont.Strategy) == 0 {
		t.Fatal("continuous search returned no channels")
	}
}

func TestJoinPlannerCustomDemandAndTargets(t *testing.T) {
	// Figure 2 through the public API: path A-B-C-D, flow A→D at rate 9,
	// joining user pays only B.
	n := PathNetwork(4, 100)
	probs := [][]float64{
		{0, 0, 0, 1},
		{0, 0, 0, 0},
		{0, 0, 0, 0},
		{0, 0, 0, 0},
	}
	p, err := NewJoinPlanner(n,
		WithDemand([]float64{9, 0, 0, 0}, probs),
		WithJoinTargets(map[int]float64{1: 1}),
		WithParams(Params{OnChainCost: 20, FAvg: 1, FeePerHop: 1, OwnRate: 1,
			CapacityFactor: func(l float64) float64 { return math.Min(1, l/9) }}),
	)
	if err != nil {
		t.Fatalf("NewJoinPlanner: %v", err)
	}
	plan, err := p.DiscreteSearch(59, 1)
	if err != nil {
		t.Fatalf("DiscreteSearch: %v", err)
	}
	peers := map[int]bool{}
	for _, a := range plan.Strategy {
		peers[a.Peer] = true
	}
	if !peers[0] || !peers[3] {
		t.Fatalf("plan %v, want channels to users 0 (A) and 3 (D)", plan.Strategy)
	}
}

func TestJoinPlannerValidation(t *testing.T) {
	n := Star(3, 1)
	if _, err := NewJoinPlanner(n, WithDemand([]float64{1}, [][]float64{{0}})); !errors.Is(err, ErrBadInput) {
		t.Fatalf("short demand error = %v", err)
	}
	if _, err := NewJoinPlanner(n, WithParams(Params{})); !errors.Is(err, ErrBadInput) {
		t.Fatalf("zero params error = %v", err)
	}
	p, err := NewJoinPlanner(n)
	if err != nil {
		t.Fatalf("NewJoinPlanner: %v", err)
	}
	if _, err := p.Greedy(-1, 1); !errors.Is(err, ErrBadInput) {
		t.Fatalf("negative budget error = %v", err)
	}
	if _, err := p.DiscreteSearch(5, 0); !errors.Is(err, ErrBadInput) {
		t.Fatalf("zero unit error = %v", err)
	}
}

func TestStabilityFacade(t *testing.T) {
	// Theorem 9 regime.
	p := GameParams{ZipfS: 2.5, SenderRate: 1, FAvg: 0.5, FeePerHop: 0.5, LinkCost: 1}
	if !Theorem9Regime(4, p) {
		t.Fatal("expected Theorem 9 regime")
	}
	closed, exhaustive, err := StarStable(4, p)
	if err != nil {
		t.Fatalf("StarStable: %v", err)
	}
	if !closed || !exhaustive {
		t.Fatalf("star not stable: closed=%v exhaustive=%v", closed, exhaustive)
	}
	// Free channels destabilise.
	free := GameParams{ZipfS: 0.5, SenderRate: 1, FAvg: 1, FeePerHop: 0.1, LinkCost: 0}
	stable, witness, err := IsNashEquilibrium(Star(4, 1), free)
	if err != nil {
		t.Fatalf("IsNashEquilibrium: %v", err)
	}
	if stable || witness == nil {
		t.Fatal("star stable with free channels")
	}
	if witness.Gain <= 0 {
		t.Fatalf("witness gain = %v", witness.Gain)
	}
}

func TestStabilityTheorems(t *testing.T) {
	p := DefaultGameParams()
	dev, found, err := PathInstabilityWitness(6, p)
	if err != nil {
		t.Fatalf("PathInstabilityWitness: %v", err)
	}
	if !found || dev.Gain <= 0 {
		t.Fatalf("no path deviation found (%v, %v)", found, dev)
	}
	n0, found, err := CircleCrossover(GameParams{ZipfS: 0.5, SenderRate: 1, FAvg: 0.5, FeePerHop: 0.5, LinkCost: 0.5}, 64)
	if err != nil {
		t.Fatalf("CircleCrossover: %v", err)
	}
	if !found || n0 < 4 {
		t.Fatalf("crossover = (%d,%v)", n0, found)
	}
	pathLen, bound, holds, err := HubBound(Star(6, 1), GameParams{ZipfS: 2.5, SenderRate: 1, FAvg: 0.5, FeePerHop: 0.5, LinkCost: 2}, 0)
	if err != nil {
		t.Fatalf("HubBound: %v", err)
	}
	if pathLen != 2 || !holds || bound < 2 {
		t.Fatalf("HubBound = (%d, %v, %v)", pathLen, bound, holds)
	}
}

func TestUtilitiesAndBestResponse(t *testing.T) {
	n := Star(3, 1)
	utils, err := Utilities(n, DefaultGameParams())
	if err != nil {
		t.Fatalf("Utilities: %v", err)
	}
	if len(utils) != 4 {
		t.Fatalf("utilities length = %d", len(utils))
	}
	dev, err := BestResponse(n, DefaultGameParams(), 1)
	if err != nil {
		t.Fatalf("BestResponse: %v", err)
	}
	if dev.Node != 1 {
		t.Fatalf("deviation node = %d", dev.Node)
	}
}

func TestSimulateFacade(t *testing.T) {
	n := Star(5, 1000)
	report, err := Simulate(n, SimConfig{
		Events:      5000,
		ZipfS:       1,
		TxSize:      1,
		FeePerHop:   0.01,
		OnChainFee:  1,
		Seed:        5,
		SteadyState: true,
	})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if report.SuccessRate < 0.99 {
		t.Fatalf("success rate = %v", report.SuccessRate)
	}
	hubPred := report.PredictedTransit[0]
	hubMeas := report.MeasuredTransit[0]
	if hubPred <= 0 {
		t.Fatal("hub predicted transit not positive")
	}
	if rel := math.Abs(hubMeas-hubPred) / hubPred; rel > 0.15 {
		t.Fatalf("hub transit rel err = %v", rel)
	}
	if _, err := Simulate(n, SimConfig{}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("zero events error = %v", err)
	}
}

func TestExperimentFacade(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 30 {
		t.Fatalf("experiment count = %d, want 30", len(ids))
	}
	var buf bytes.Buffer
	if err := RunExperiment("F1", 1, &buf); err != nil {
		t.Fatalf("RunExperiment: %v", err)
	}
	if !strings.Contains(buf.String(), "Figure 1") {
		t.Fatalf("unexpected render: %s", buf.String())
	}
	buf.Reset()
	if err := RunExperimentCSV("E9", 1, &buf); err != nil {
		t.Fatalf("RunExperimentCSV: %v", err)
	}
	if !strings.Contains(buf.String(), "deviation found") {
		t.Fatalf("unexpected CSV: %s", buf.String())
	}
	if err := RunExperiment("nope", 1, &buf); !errors.Is(err, ErrBadInput) {
		t.Fatalf("unknown experiment error = %v", err)
	}
}

func TestBestResponseDynamicsFacade(t *testing.T) {
	params := GameParams{ZipfS: 2, SenderRate: 1, FAvg: 0.5, FeePerHop: 0.5, LinkCost: 1}
	start := Circle(6, 1)
	report, err := BestResponseDynamics(start, params, 30)
	if err != nil {
		t.Fatalf("BestResponseDynamics: %v", err)
	}
	if !report.Converged {
		t.Fatalf("dynamics did not converge: %+v", report)
	}
	if report.FinalClass != "star" {
		t.Fatalf("final class = %s, want star", report.FinalClass)
	}
	// Input untouched.
	if start.NumChannels() != 6 {
		t.Fatal("dynamics mutated the starting network")
	}
	if report.Final.NumUsers() != 6 {
		t.Fatalf("final users = %d", report.Final.NumUsers())
	}
	if _, err := BestResponseDynamics(start, GameParams{LinkCost: -1}, 5); !errors.Is(err, ErrBadInput) {
		t.Fatalf("invalid params error = %v", err)
	}
}

func TestWithPaymentSizeReducesGraph(t *testing.T) {
	// A network where one channel direction cannot carry the payment
	// size: the planner must see longer distances through that direction.
	n := NewNetwork()
	n.AddUsers(3)
	if err := n.AddChannel(0, 1, 10, 10); err != nil {
		t.Fatalf("AddChannel: %v", err)
	}
	if err := n.AddChannel(1, 2, 1, 10); err != nil { // 1→2 can carry only 1
		t.Fatalf("AddChannel: %v", err)
	}
	full, err := NewJoinPlanner(n, WithUniformTransactions())
	if err != nil {
		t.Fatalf("NewJoinPlanner: %v", err)
	}
	reduced, err := NewJoinPlanner(n, WithUniformTransactions(), WithPaymentSize(5))
	if err != nil {
		t.Fatalf("NewJoinPlanner: %v", err)
	}
	s := Strategy{{Peer: 0, Lock: 1}}
	// Under the reduced graph, reaching user 2 from the join point via 0
	// is impossible (1→2 is filtered out), so fees blow up to +Inf.
	if math.IsInf(full.Fees(s), 1) {
		t.Fatal("full-graph fees should be finite")
	}
	if !math.IsInf(reduced.Fees(s), 1) {
		t.Fatal("reduced-graph fees should be +Inf for size-5 payments")
	}
}

func TestWithPerUserZipf(t *testing.T) {
	// User 1 transacts almost uniformly (s=0) while everyone else is
	// strongly degree-biased: its demand row must differ from user 2's.
	n := Star(5, 10)
	base, err := NewJoinPlanner(n, WithZipf(3))
	if err != nil {
		t.Fatalf("NewJoinPlanner: %v", err)
	}
	custom, err := NewJoinPlanner(n, WithZipf(3), WithPerUserZipf(map[int]float64{1: 0}))
	if err != nil {
		t.Fatalf("NewJoinPlanner: %v", err)
	}
	s := Strategy{{Peer: 1, Lock: 1}, {Peer: 2, Lock: 1}}
	// The joining user's fees are unchanged (its own distribution is the
	// default), but revenue shifts because user 1's traffic pattern
	// changed.
	if math.Abs(base.Fees(s)-custom.Fees(s)) > 1e-9 {
		t.Fatal("per-user override changed the joining user's own distribution")
	}
	if math.Abs(base.Revenue(s)-custom.Revenue(s)) < 1e-12 {
		t.Fatal("per-user override had no effect on transit revenue")
	}
}

func TestFacadeGuasoniCost(t *testing.T) {
	n := Star(4, 10)
	params := DefaultParams()
	params.ChannelCostFn = GuasoniCost(1, 0.2, 2)
	p, err := NewJoinPlanner(n, WithParams(params))
	if err != nil {
		t.Fatalf("NewJoinPlanner: %v", err)
	}
	s := Strategy{{Peer: 0, Lock: 5}}
	want := GuasoniCost(1, 0.2, 2)(5)
	if got := p.Cost(s); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Cost = %v, want %v", got, want)
	}
}

func TestJoinSessionMatchesOneShotPricing(t *testing.T) {
	n := Star(6, 10)
	p, err := NewJoinPlanner(n, WithZipf(1))
	if err != nil {
		t.Fatalf("NewJoinPlanner: %v", err)
	}
	sess := p.NewSession()
	if !sess.Disconnected() {
		t.Fatal("empty session should be disconnected")
	}
	var s Strategy
	for _, a := range []Action{{Peer: 0, Lock: 2}, {Peer: 3, Lock: 1}, {Peer: 0, Lock: 0}} {
		sess.Push(a)
		s = append(s, a)
		if got, want := sess.Utility(), p.Utility(s); got != want {
			t.Fatalf("session Utility after %v = %v, one-shot %v", s, got, want)
		}
		if got, want := sess.Fees(), p.Fees(s); got != want {
			t.Fatalf("session Fees after %v = %v, one-shot %v", s, got, want)
		}
		if got, want := sess.Revenue(), p.Revenue(s); got != want {
			t.Fatalf("session Revenue after %v = %v, one-shot %v", s, got, want)
		}
		if got, want := sess.Cost(), p.Cost(s); got != want {
			t.Fatalf("session Cost after %v = %v, one-shot %v", s, got, want)
		}
	}
	if got := sess.Strategy(); len(got) != 3 || got[2].Peer != 0 || got[2].Lock != 0 {
		t.Fatalf("session Strategy = %v", got)
	}
	sess.Pop()
	s = s[:2]
	if got, want := sess.Utility(), p.Utility(s); got != want {
		t.Fatalf("session Utility after Pop = %v, one-shot %v", got, want)
	}
	if sess.Depth() != 2 {
		t.Fatalf("Depth = %d, want 2", sess.Depth())
	}
	sess.Reset()
	if sess.Depth() != 0 || !sess.Disconnected() {
		t.Fatalf("Reset left depth %d", sess.Depth())
	}
}
