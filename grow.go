package lcg

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/lightning-creation-games/lcg/internal/growth"
)

// GrowConfig parametrises a sequential-arrival growth run (see
// internal/growth): a network grows from a seed topology through a
// stream of joiners, each pricing its attachment with Algorithm 1 over
// the incremental evaluation engine, with optional churn and
// best-response rewiring.
type GrowConfig struct {
	// Topology seeds the run: "empty", "star", "er" or "ba" (default).
	Topology string
	// SeedSize is the seed topology's node count (default 12; ignored
	// for "empty").
	SeedSize int
	// SeedParam is the ER edge probability or the BA attachment count
	// (0 picks the topology's default).
	SeedParam float64
	// Arrivals is the number of joiners to process.
	Arrivals int
	// Candidates bounds the peers each joiner prices; 0 (or negative)
	// offers every alive node.
	Candidates int
	// Preferential samples candidates proportionally to degree+1
	// instead of uniformly.
	Preferential bool
	// BudgetMin/Max, LockMin/Max and RateMin/Max draw each joiner's
	// budget, per-channel lock and transaction rate uniformly; Min ==
	// Max pins the value. Zero maxima fall back to the defaults
	// (budget 3–8, lock 1, rate 0.5–1.5).
	BudgetMin, BudgetMax float64
	LockMin, LockMax     float64
	RateMin, RateMax     float64
	// ChurnRate is the per-arrival probability that one alive node
	// departs, closing all its channels.
	ChurnRate float64
	// RewireEvery triggers a best-response rewiring round every k
	// arrivals for RewireCount sampled nodes (0 disables).
	RewireEvery, RewireCount int
	// RefreshEvery sets the demand/λ̂ snapshot cadence in arrivals
	// (default 32); EpochEvery the metric cadence (default Arrivals/8).
	RefreshEvery, EpochEvery int
	// Uniform switches the transaction model to the uniform baseline;
	// otherwise the modified Zipf distribution with scale ZipfS
	// (default 1) is used.
	Uniform bool
	ZipfS   float64
	// Balance is the channel balance of seed channels and the peer-side
	// balance of committed channels (default 1).
	Balance float64
	// Params are the economic parameters (default DefaultParams);
	// OwnRate is overridden by each joiner's drawn rate.
	Params *Params
	// Parallelism bounds the workers of the engine's substrate passes
	// (the row-sharded all-pairs rebuild after churn and the commit
	// fold): 0 runs single-threaded, negative uses all cores, positive
	// bounds the workers. The report is bit-identical at every setting.
	Parallelism int
	// Seed drives the run's random stream; runs are bit-reproducible
	// per seed.
	Seed int64
}

// GrowEpoch is one streamed metric snapshot of a growth run. All fields
// are deterministic per seed.
type GrowEpoch struct {
	// Arrival counts processed joiners at snapshot time.
	Arrival int
	// Nodes and Channels describe the alive network.
	Nodes, Channels int
	// MaxDegree, MeanDegree, DegreeGini and Centralization summarise
	// the degree distribution.
	MaxDegree      int
	MeanDegree     float64
	DegreeGini     float64
	Centralization float64
	// Diameter and MeanDistance summarise the finite shortest paths;
	// Routable is the reachable fraction of ordered node pairs.
	Diameter     int
	MeanDistance float64
	Routable     float64
	// Efficiency is the welfare proxy (global network efficiency).
	Efficiency float64
	// EvalsPerJoin is the mean objective evaluations per join since the
	// previous epoch.
	EvalsPerJoin float64
	// Class labels the emergent topology.
	Class string
}

// GrowReport is the outcome of a growth run.
type GrowReport struct {
	// Epochs are the streamed snapshots, oldest first; the last one
	// describes the final network.
	Epochs []GrowEpoch
	// Final is the grown network (departed nodes remain as isolated
	// users).
	Final *Network
	// Joins, Departures and Rewires count processed events.
	Joins, Departures, Rewires int
	// Evaluations totals objective evaluations spent pricing.
	Evaluations int64
	// WallMS is the run's wall-clock time — the only non-deterministic
	// field, excluded from every reproducible table.
	WallMS float64
}

// Grow runs a sequential-arrival network-formation simulation and
// returns its streamed metrics and final network. The result (wall time
// aside) is a pure function of the configuration, bit-identical across
// machines: every joiner's strategy matches what a from-scratch pricing
// of the same arrival would choose, while the engine's incremental
// commit path sustains thousands of arrivals.
func Grow(cfg GrowConfig) (*GrowReport, error) {
	gc := growth.DefaultConfig()
	switch cfg.Topology {
	case "", "ba":
		gc.Seed = growth.SeedBA
	case "empty":
		gc.Seed = growth.SeedEmpty
		gc.SeedSize = 0
	case "star":
		gc.Seed = growth.SeedStar
	case "er":
		gc.Seed = growth.SeedER
	default:
		return nil, fmt.Errorf("%w: unknown seed topology %q (empty|star|er|ba)", ErrBadInput, cfg.Topology)
	}
	if cfg.SeedSize > 0 {
		gc.SeedSize = cfg.SeedSize
	}
	if cfg.SeedParam > 0 {
		gc.SeedParam = cfg.SeedParam
	} else if gc.Seed == growth.SeedER {
		gc.SeedParam = 0.3
	}
	gc.Arrivals = cfg.Arrivals
	gc.Candidates = cfg.Candidates // ≤ 0 offers every alive node
	if cfg.Preferential {
		gc.Attach = growth.AttachPreferential
	} else {
		gc.Attach = growth.AttachUniform
	}
	gc.BudgetMin, gc.BudgetMax = 3, 8
	if cfg.BudgetMax > 0 {
		gc.BudgetMin, gc.BudgetMax = cfg.BudgetMin, cfg.BudgetMax
	}
	gc.LockMin, gc.LockMax = 1, 1
	if cfg.LockMax > 0 {
		gc.LockMin, gc.LockMax = cfg.LockMin, cfg.LockMax
	}
	gc.RateMin, gc.RateMax = 0.5, 1.5
	if cfg.RateMax > 0 {
		gc.RateMin, gc.RateMax = cfg.RateMin, cfg.RateMax
	}
	gc.ChurnRate = cfg.ChurnRate
	gc.RewireEvery, gc.RewireCount = cfg.RewireEvery, cfg.RewireCount
	if cfg.RefreshEvery > 0 {
		gc.RefreshEvery = cfg.RefreshEvery
	}
	gc.EpochEvery = cfg.EpochEvery
	gc.Uniform = cfg.Uniform
	if cfg.ZipfS > 0 {
		gc.ZipfS = cfg.ZipfS
	}
	if cfg.Balance > 0 {
		gc.Balance = cfg.Balance
	}
	if cfg.Params != nil {
		gc.Params = cfg.Params.toCore()
	}
	gc.Parallelism = cfg.Parallelism

	start := time.Now()
	res, err := growth.Run(gc, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	report := &GrowReport{
		Final:       &Network{g: res.Final},
		Departures:  res.Departures,
		Rewires:     res.Rewires,
		Evaluations: res.Evaluations,
		WallMS:      float64(time.Since(start).Microseconds()) / 1000,
	}
	for _, d := range res.Trace {
		if d.Kind == growth.DecideJoin {
			report.Joins++
		}
	}
	for _, ep := range res.Epochs {
		report.Epochs = append(report.Epochs, GrowEpoch{
			Arrival:        ep.Arrival,
			Nodes:          ep.Nodes,
			Channels:       ep.Channels,
			MaxDegree:      ep.MaxDegree,
			MeanDegree:     ep.MeanDegree,
			DegreeGini:     ep.DegreeGini,
			Centralization: ep.Centralization,
			Diameter:       ep.Diameter,
			MeanDistance:   ep.MeanDistance,
			Routable:       ep.Routable,
			Efficiency:     ep.Efficiency,
			EvalsPerJoin:   ep.EvalsPerJoin,
			Class:          ep.Class,
		})
	}
	return report, nil
}
