package lcg

import (
	"errors"
	"math"
	"reflect"
	"testing"
)

func TestReplayTrafficFacade(t *testing.T) {
	n := Star(5, 1000)
	cfg := TrafficConfig{
		Events:         5000,
		ZipfS:          1,
		TxSize:         1,
		FeePerHop:      0.01,
		Seed:           5,
		Shards:         4,
		RebalanceEvery: 500,
	}
	report, err := ReplayTraffic(n, cfg)
	if err != nil {
		t.Fatalf("ReplayTraffic: %v", err)
	}
	if report.SuccessRate < 0.99 {
		t.Fatalf("success rate = %v", report.SuccessRate)
	}
	hubPred := report.PredictedTransit[0]
	hubMeas := report.MeasuredTransit[0]
	if hubPred <= 0 {
		t.Fatal("hub predicted transit not positive")
	}
	if rel := math.Abs(hubMeas-hubPred) / hubPred; rel > 0.15 {
		t.Fatalf("hub transit rel err = %v", rel)
	}
	// The hub forwards every payment; its realized revenue per time unit
	// must match its forwarding rate times the constant fee.
	if report.RevenueRate[0] <= 0 {
		t.Fatal("hub realized revenue not positive")
	}
	if rel := math.Abs(report.RevenueRate[0]-0.01*hubMeas) / (0.01 * hubMeas); rel > 1e-9 {
		t.Fatalf("hub revenue inconsistent with forwarding: %v", rel)
	}
	if _, err := ReplayTraffic(n, TrafficConfig{}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("zero events error = %v", err)
	}

	// Worker count never changes the result.
	serial := cfg
	serial.Parallelism = 1
	got, err := ReplayTraffic(n, serial)
	if err != nil {
		t.Fatalf("serial replay: %v", err)
	}
	if !reflect.DeepEqual(report, got) {
		t.Fatal("fast replay depends on parallelism")
	}
}

// TestReplayTrafficSparseTxDist drives the facade's sparse sampler
// planes: every family replays deterministically, leaves the analytic
// PredictedTransit at its all-zero sentinel (the sparse path exists to
// skip that O(n²) computation), and still measures real forwarding.
func TestReplayTrafficSparseTxDist(t *testing.T) {
	n := Star(6, 1000)
	for _, txdist := range []string{"uniform", "degree", "distance"} {
		cfg := TrafficConfig{
			Events:         4000,
			TxDist:         txdist,
			TxSize:         1,
			FeePerHop:      0.01,
			Seed:           3,
			Shards:         4,
			RebalanceEvery: 500,
		}
		report, err := ReplayTraffic(n, cfg)
		if err != nil {
			t.Fatalf("%s: ReplayTraffic: %v", txdist, err)
		}
		if report.SuccessRate < 0.99 {
			t.Fatalf("%s: success rate = %v", txdist, report.SuccessRate)
		}
		for v, p := range report.PredictedTransit {
			if p != 0 {
				t.Fatalf("%s: PredictedTransit[%d] = %v, want the all-zero sparse sentinel", txdist, v, p)
			}
		}
		if report.MeasuredTransit[0] <= 0 {
			t.Fatalf("%s: hub measured no forwarding", txdist)
		}
		again, err := ReplayTraffic(n, cfg)
		if err != nil {
			t.Fatalf("%s: second replay: %v", txdist, err)
		}
		if !reflect.DeepEqual(report, again) {
			t.Fatalf("%s: sparse replay not reproducible", txdist)
		}
	}
	if _, err := ReplayTraffic(n, TrafficConfig{Events: 100, TxDist: "zipf-but-wrong"}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("unknown txdist error = %v", err)
	}
}
