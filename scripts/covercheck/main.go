// Command covercheck enforces the repository's coverage ratchet: it
// reads `go tool cover -func` output on stdin, extracts the total
// statement coverage, and compares it against the recorded baseline.
// CI fails when coverage drops more than the allowed slack below the
// baseline, so test coverage can only ratchet upward (raise the
// baseline deliberately, in the same commit that earns it).
//
// Usage:
//
//	go test -coverprofile=cover.out ./...
//	go tool cover -func=cover.out | go run ./scripts/covercheck -baseline scripts/covercheck/baseline.txt
//
// With -write, the tool records the measured total as the new baseline
// instead of checking.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

func main() {
	baselinePath := flag.String("baseline", "scripts/covercheck/baseline.txt", "file recording the baseline total coverage (percent)")
	slack := flag.Float64("slack", 1.0, "allowed drop below the baseline in coverage points")
	write := flag.Bool("write", false, "record the measured total as the new baseline instead of checking")
	flag.Parse()

	total, err := parseTotal(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "covercheck:", err)
		os.Exit(1)
	}
	if *write {
		if err := os.WriteFile(*baselinePath, []byte(fmt.Sprintf("%.1f\n", total)), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "covercheck:", err)
			os.Exit(1)
		}
		fmt.Printf("covercheck: baseline set to %.1f%%\n", total)
		return
	}
	baseline, err := readBaseline(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "covercheck:", err)
		os.Exit(1)
	}
	verdict, ok := check(total, baseline, *slack)
	fmt.Println(verdict)
	if !ok {
		os.Exit(1)
	}
}

// parseTotal extracts the "total: (statements) NN.N%" line from
// `go tool cover -func` output.
func parseTotal(r io.Reader) (float64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	found, total := false, 0.0
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || fields[0] != "total:" {
			continue
		}
		pct := strings.TrimSuffix(fields[len(fields)-1], "%")
		v, err := strconv.ParseFloat(pct, 64)
		if err != nil {
			return 0, fmt.Errorf("malformed total line %q: %v", sc.Text(), err)
		}
		found, total = true, v
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	if !found {
		return 0, fmt.Errorf("no total: line found on stdin (pipe `go tool cover -func` output)")
	}
	return total, nil
}

// readBaseline reads the recorded baseline percentage.
func readBaseline(path string) (float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(string(data)), 64)
	if err != nil {
		return 0, fmt.Errorf("malformed baseline %q: %v", strings.TrimSpace(string(data)), err)
	}
	return v, nil
}

// check renders the verdict line and reports whether the ratchet holds.
func check(total, baseline, slack float64) (string, bool) {
	switch {
	case total+slack < baseline:
		return fmt.Sprintf("covercheck: FAIL — total coverage %.1f%% fell more than %.1f points below the %.1f%% baseline", total, slack, baseline), false
	case total > baseline:
		return fmt.Sprintf("covercheck: OK — total coverage %.1f%% exceeds the %.1f%% baseline (consider ratcheting it up)", total, baseline), true
	default:
		return fmt.Sprintf("covercheck: OK — total coverage %.1f%% within %.1f points of the %.1f%% baseline", total, slack, baseline), true
	}
}
