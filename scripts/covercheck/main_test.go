package main

import (
	"strings"
	"testing"
)

const sampleFunc = `github.com/lightning-creation-games/lcg/internal/market/market.go:289:	Run			95.0%
github.com/lightning-creation-games/lcg/internal/market/oracle.go:38:	ReferenceMarket		100.0%
total:									(statements)		81.4%
`

func TestParseTotal(t *testing.T) {
	total, err := parseTotal(strings.NewReader(sampleFunc))
	if err != nil {
		t.Fatalf("parseTotal: %v", err)
	}
	if total != 81.4 {
		t.Fatalf("total = %v, want 81.4", total)
	}
}

func TestParseTotalMissing(t *testing.T) {
	if _, err := parseTotal(strings.NewReader("no totals here\n")); err == nil {
		t.Fatal("accepted input without a total line")
	}
}

func TestParseTotalMalformed(t *testing.T) {
	if _, err := parseTotal(strings.NewReader("total:\t(statements)\tNaN%%garbage\n")); err == nil {
		t.Fatal("accepted malformed percentage")
	}
}

func TestCheckRatchet(t *testing.T) {
	cases := []struct {
		total, baseline, slack float64
		ok                     bool
	}{
		{80.0, 80.0, 1.0, true},  // exactly at baseline
		{79.1, 80.0, 1.0, true},  // within slack
		{78.9, 80.0, 1.0, false}, // dropped past slack
		{82.3, 80.0, 1.0, true},  // improved
		{78.9, 80.0, 2.0, true},  // wider slack
	}
	for i, c := range cases {
		verdict, ok := check(c.total, c.baseline, c.slack)
		if ok != c.ok {
			t.Fatalf("case %d: check(%v, %v, %v) = %q, ok=%v, want %v",
				i, c.total, c.baseline, c.slack, verdict, ok, c.ok)
		}
		wantPrefix := "covercheck: OK"
		if !c.ok {
			wantPrefix = "covercheck: FAIL"
		}
		if !strings.HasPrefix(verdict, wantPrefix) {
			t.Fatalf("case %d: verdict %q does not open with %q", i, verdict, wantPrefix)
		}
	}
}

func TestReadBaseline(t *testing.T) {
	path := t.TempDir() + "/baseline.txt"
	if _, err := readBaseline(path); err == nil {
		t.Fatal("missing baseline accepted")
	}
}
