package main

import (
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	res, ok := parseBenchLine("BenchmarkGreedyLargeN/n=512-8         \t       3\t  41234567 ns/op\t     120 B/op\t       2 allocs/op")
	if !ok {
		t.Fatal("line not recognised")
	}
	if res.Name != "BenchmarkGreedyLargeN/n=512" || res.Procs != 8 {
		t.Fatalf("name/procs = %q/%d", res.Name, res.Procs)
	}
	if res.Iterations != 3 || res.NsPerOp != 41234567 {
		t.Fatalf("iters/ns = %d/%v", res.Iterations, res.NsPerOp)
	}
	if res.Metrics["B/op"] != 120 || res.Metrics["allocs/op"] != 2 {
		t.Fatalf("metrics = %v", res.Metrics)
	}
}

func TestParseBenchLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  \tgithub.com/lightning-creation-games/lcg\t1.2s",
		"BenchmarkBroken",
		"BenchmarkBad-8\tnot-a-number\t12 ns/op",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Fatalf("line %q was accepted", line)
		}
	}
}

func TestHeaderLine(t *testing.T) {
	key, val, ok := headerLine("cpu: Intel(R) Xeon(R) Processor @ 2.10GHz")
	if !ok || key != "cpu" || val == "" {
		t.Fatalf("header parse = %q %q %v", key, val, ok)
	}
	if _, _, ok := headerLine("BenchmarkX-8 1 2 ns/op"); ok {
		t.Fatal("bench line parsed as header")
	}
}

func docOf(results ...Result) *Document { return &Document{Results: results} }

func TestDiffDocsPassesWithinThreshold(t *testing.T) {
	base := docOf(
		Result{Name: "BenchmarkMarginalProbe/incremental/n=512", NsPerOp: 1000},
		Result{Name: "BenchmarkGrowArrivals/n=2000", NsPerOp: 5e9},
		Result{Name: "BenchmarkUnpinned", NsPerOp: 10},
	)
	fresh := docOf(
		Result{Name: "BenchmarkMarginalProbe/incremental/n=512", NsPerOp: 1200},
		Result{Name: "BenchmarkGrowArrivals/n=2000", NsPerOp: 4e9},
		Result{Name: "BenchmarkUnpinned", NsPerOp: 1e9}, // not pinned: free to drift
	)
	report, failed := diffDocs(fresh, base, 0.25, defaultPins)
	if failed {
		t.Fatalf("diff failed within threshold:\n%s", report)
	}
}

func TestDiffDocsFailsOnRegression(t *testing.T) {
	base := docOf(Result{Name: "BenchmarkMarketTick/batch=64", NsPerOp: 1000})
	fresh := docOf(Result{Name: "BenchmarkMarketTick/batch=64", NsPerOp: 1300})
	report, failed := diffDocs(fresh, base, 0.25, defaultPins)
	if !failed {
		t.Fatalf("30%% regression passed a 25%% gate:\n%s", report)
	}
}

func TestDiffDocsFailsOnMissingPinned(t *testing.T) {
	base := docOf(Result{Name: "BenchmarkGrowArrivals/n=512", NsPerOp: 1000})
	fresh := docOf(Result{Name: "BenchmarkGrowArrivals/n=1024", NsPerOp: 900})
	report, failed := diffDocs(fresh, base, 0.25, defaultPins)
	if !failed {
		t.Fatalf("missing pinned benchmark passed:\n%s", report)
	}
	if !strings.Contains(report, "missing") || !strings.Contains(report, "no baseline anchor") {
		t.Fatalf("report lacks missing/new annotations:\n%s", report)
	}
}

func TestDiffDocsNewRowsNeverFail(t *testing.T) {
	base := docOf(Result{Name: "BenchmarkGrowArrivals/n=512", NsPerOp: 1000})
	fresh := docOf(
		Result{Name: "BenchmarkGrowArrivals/n=512", NsPerOp: 1000},
		Result{Name: "BenchmarkGrowArrivals/n=10000", NsPerOp: 9e10},
	)
	if report, failed := diffDocs(fresh, base, 0.25, defaultPins); failed {
		t.Fatalf("new row failed the gate:\n%s", report)
	}
}
