package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	res, ok := parseBenchLine("BenchmarkGreedyLargeN/n=512-8         \t       3\t  41234567 ns/op\t     120 B/op\t       2 allocs/op")
	if !ok {
		t.Fatal("line not recognised")
	}
	if res.Name != "BenchmarkGreedyLargeN/n=512" || res.Procs != 8 {
		t.Fatalf("name/procs = %q/%d", res.Name, res.Procs)
	}
	if res.Iterations != 3 || res.NsPerOp != 41234567 {
		t.Fatalf("iters/ns = %d/%v", res.Iterations, res.NsPerOp)
	}
	if res.Metrics["B/op"] != 120 || res.Metrics["allocs/op"] != 2 {
		t.Fatalf("metrics = %v", res.Metrics)
	}
}

func TestParseBenchLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  \tgithub.com/lightning-creation-games/lcg\t1.2s",
		"BenchmarkBroken",
		"BenchmarkBad-8\tnot-a-number\t12 ns/op",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Fatalf("line %q was accepted", line)
		}
	}
}

func TestHeaderLine(t *testing.T) {
	key, val, ok := headerLine("cpu: Intel(R) Xeon(R) Processor @ 2.10GHz")
	if !ok || key != "cpu" || val == "" {
		t.Fatalf("header parse = %q %q %v", key, val, ok)
	}
	if _, _, ok := headerLine("BenchmarkX-8 1 2 ns/op"); ok {
		t.Fatal("bench line parsed as header")
	}
}
