// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document on stdout, so CI can archive one
// BENCH_<sha>.json artifact per commit and the performance trajectory of
// the hot paths stays diffable across the project's history.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime=1x ./... | go run ./scripts/benchjson -sha "$GITHUB_SHA" > BENCH_$GITHUB_SHA.json
//	go run ./scripts/benchjson diff BENCH_$GITHUB_SHA.json scripts/benchjson/baseline.json
//
// The parser understands the standard benchmark result line — name,
// iteration count, ns/op, and the optional -benchmem columns (B/op,
// allocs/op) plus any custom ReportMetric columns — and carries the
// goos/goarch/pkg/cpu header lines into the document metadata.
//
// The diff mode compares a fresh artifact against the committed
// baseline (scripts/benchjson/baseline.json) and fails — exit status
// 1 — when any pinned benchmark regresses by more than the threshold
// (default 25%) in ns/op, which is the CI gate that anchors the bench
// trajectory. Refresh the baseline intentionally, in the commit that
// justifies it:
//
//	go test -run '^$' -short -bench '<pinned>' . | go run ./scripts/benchjson > scripts/benchjson/baseline.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name with the -<procs> suffix stripped.
	Name string `json:"name"`
	// Procs is GOMAXPROCS during the run (the -N name suffix).
	Procs int `json:"procs"`
	// Iterations is the measured iteration count.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the headline ns/op metric.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds every further "<value> <unit>" pair on the line
	// (B/op, allocs/op, MB/s, custom units), keyed by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Document is the emitted artifact.
type Document struct {
	SHA       string            `json:"sha,omitempty"`
	Timestamp string            `json:"timestamp"`
	Meta      map[string]string `json:"meta,omitempty"`
	Results   []Result          `json:"results"`
}

// defaultPins are the benchmark families the CI regression gate tracks:
// the per-probe delta, the growth engine's arrival series, the market
// engine's tick series, the traffic engine's replay series at both
// the n=2000 flagship and the n=10000 sparse-sampler scale (the 10k
// entry is already covered by the prefix before it; it is pinned by
// name so the scale rows can never silently drop out of the gate),
// the decremental close fold the churn path prices departures with,
// the serving session's query throughput idle and under commit load,
// the substrate checkpoint codec's save/restore pair, the write-ahead
// log's append path under each fsync policy, and the crash-recovery
// path (checkpoint load + WAL replay at n=2000).
var defaultPins = []string{"BenchmarkMarginalProbe", "BenchmarkGrowArrivals", "BenchmarkMarketTick", "BenchmarkTrafficReplay", "BenchmarkTrafficReplay10k", "BenchmarkCloseFold", "BenchmarkServeQueries", "BenchmarkCheckpointRestore", "BenchmarkWALAppend", "BenchmarkCrashRecovery"}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "diff" {
		os.Exit(diffMain(os.Args[2:]))
	}
	sha := flag.String("sha", "", "commit SHA recorded in the artifact")
	flag.Parse()

	doc := Document{
		SHA:       *sha,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Meta:      map[string]string{},
		Results:   []Result{},
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if key, val, ok := headerLine(line); ok {
			doc.Meta[key] = val
			continue
		}
		if res, ok := parseBenchLine(line); ok {
			doc.Results = append(doc.Results, res)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: write:", err)
		os.Exit(1)
	}
	if len(doc.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
}

// headerLine recognises the "goos: linux"-style preamble.
func headerLine(line string) (key, val string, ok bool) {
	for _, prefix := range []string{"goos", "goarch", "pkg", "cpu"} {
		if strings.HasPrefix(line, prefix+": ") {
			return prefix, strings.TrimSpace(strings.TrimPrefix(line, prefix+": ")), true
		}
	}
	return "", "", false
}

// parseBenchLine parses one "BenchmarkX-8  100  123 ns/op  ..." line.
func parseBenchLine(line string) (Result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Result{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := fields[0]
	procs := 1
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			procs = p
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{
		Name:       name,
		Procs:      procs,
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	// The remainder alternates "<value> <unit>".
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			res.NsPerOp = v
			continue
		}
		res.Metrics[unit] = v
	}
	if len(res.Metrics) == 0 {
		res.Metrics = nil
	}
	return res, true
}

// diffMain implements `benchjson diff <fresh.json> <baseline.json>`.
func diffMain(args []string) int {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	threshold := fs.Float64("threshold", 0.25, "maximum allowed ns/op regression (fraction)")
	pins := fs.String("pins", strings.Join(defaultPins, ","), "comma-separated pinned benchmark name prefixes")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchjson diff [-threshold 0.25] [-pins a,b] <fresh.json> <baseline.json>")
		return 2
	}
	fresh, err := loadDocument(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson diff:", err)
		return 1
	}
	base, err := loadDocument(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson diff:", err)
		return 1
	}
	report, failed := diffDocs(fresh, base, *threshold, strings.Split(*pins, ","))
	fmt.Print(report)
	if failed {
		return 1
	}
	return 0
}

// loadDocument reads one benchjson artifact.
func loadDocument(path string) (*Document, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &doc, nil
}

// diffDocs compares the pinned benchmarks of a fresh artifact against
// the baseline: a pinned baseline entry missing from the fresh run, or
// regressing by more than threshold in ns/op, fails the diff. Pinned
// benchmarks present only in the fresh run (new rows) are reported but
// never fail — they have no anchor yet.
func diffDocs(fresh, base *Document, threshold float64, pins []string) (report string, failed bool) {
	pinned := func(name string) bool {
		for _, p := range pins {
			if p != "" && strings.HasPrefix(name, p) {
				return true
			}
		}
		return false
	}
	freshByName := map[string]Result{}
	for _, r := range fresh.Results {
		freshByName[r.Name] = r
	}
	var b strings.Builder
	for _, want := range base.Results {
		if !pinned(want.Name) || want.NsPerOp <= 0 {
			continue
		}
		got, ok := freshByName[want.Name]
		if !ok {
			fmt.Fprintf(&b, "FAIL %s: pinned benchmark missing from fresh run\n", want.Name)
			failed = true
			continue
		}
		ratio := got.NsPerOp / want.NsPerOp
		switch {
		case ratio > 1+threshold:
			fmt.Fprintf(&b, "FAIL %s: %.0f ns/op vs baseline %.0f (%.1f%% regression > %.0f%% allowed)\n",
				want.Name, got.NsPerOp, want.NsPerOp, (ratio-1)*100, threshold*100)
			failed = true
		default:
			fmt.Fprintf(&b, "ok   %s: %.0f ns/op vs baseline %.0f (%+.1f%%)\n",
				want.Name, got.NsPerOp, want.NsPerOp, (ratio-1)*100)
		}
		delete(freshByName, want.Name)
	}
	for _, r := range fresh.Results {
		if _, stillNew := freshByName[r.Name]; stillNew && pinned(r.Name) {
			fmt.Fprintf(&b, "new  %s: %.0f ns/op (no baseline anchor yet)\n", r.Name, r.NsPerOp)
		}
	}
	return b.String(), failed
}
