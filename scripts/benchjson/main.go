// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document on stdout, so CI can archive one
// BENCH_<sha>.json artifact per commit and the performance trajectory of
// the hot paths stays diffable across the project's history.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime=1x ./... | go run ./scripts/benchjson -sha "$GITHUB_SHA" > BENCH_$GITHUB_SHA.json
//
// The parser understands the standard benchmark result line — name,
// iteration count, ns/op, and the optional -benchmem columns (B/op,
// allocs/op) plus any custom ReportMetric columns — and carries the
// goos/goarch/pkg/cpu header lines into the document metadata.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name with the -<procs> suffix stripped.
	Name string `json:"name"`
	// Procs is GOMAXPROCS during the run (the -N name suffix).
	Procs int `json:"procs"`
	// Iterations is the measured iteration count.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the headline ns/op metric.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds every further "<value> <unit>" pair on the line
	// (B/op, allocs/op, MB/s, custom units), keyed by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Document is the emitted artifact.
type Document struct {
	SHA       string            `json:"sha,omitempty"`
	Timestamp string            `json:"timestamp"`
	Meta      map[string]string `json:"meta,omitempty"`
	Results   []Result          `json:"results"`
}

func main() {
	sha := flag.String("sha", "", "commit SHA recorded in the artifact")
	flag.Parse()

	doc := Document{
		SHA:       *sha,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Meta:      map[string]string{},
		Results:   []Result{},
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if key, val, ok := headerLine(line); ok {
			doc.Meta[key] = val
			continue
		}
		if res, ok := parseBenchLine(line); ok {
			doc.Results = append(doc.Results, res)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: write:", err)
		os.Exit(1)
	}
	if len(doc.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
}

// headerLine recognises the "goos: linux"-style preamble.
func headerLine(line string) (key, val string, ok bool) {
	for _, prefix := range []string{"goos", "goarch", "pkg", "cpu"} {
		if strings.HasPrefix(line, prefix+": ") {
			return prefix, strings.TrimSpace(strings.TrimPrefix(line, prefix+": ")), true
		}
	}
	return "", "", false
}

// parseBenchLine parses one "BenchmarkX-8  100  123 ns/op  ..." line.
func parseBenchLine(line string) (Result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Result{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := fields[0]
	procs := 1
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			procs = p
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{
		Name:       name,
		Procs:      procs,
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	// The remainder alternates "<value> <unit>".
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			res.NsPerOp = v
			continue
		}
		res.Metrics[unit] = v
	}
	if len(res.Metrics) == 0 {
		res.Metrics = nil
	}
	return res, true
}
