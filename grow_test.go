package lcg

import (
	"errors"
	"testing"
)

func TestGrowFacade(t *testing.T) {
	cfg := GrowConfig{
		Topology:     "ba",
		SeedSize:     10,
		Arrivals:     60,
		Candidates:   8,
		Preferential: true,
		ChurnRate:    0.05,
		RewireEvery:  20,
		RewireCount:  1,
		Seed:         1,
	}
	report, err := Grow(cfg)
	if err != nil {
		t.Fatalf("Grow: %v", err)
	}
	if report.Joins != 60 {
		t.Fatalf("Joins = %d, want 60", report.Joins)
	}
	if report.Final.NumUsers() != 70 {
		t.Fatalf("final users = %d, want 70", report.Final.NumUsers())
	}
	if len(report.Epochs) == 0 {
		t.Fatal("no epochs")
	}
	last := report.Epochs[len(report.Epochs)-1]
	if last.Class == "" || last.Nodes == 0 {
		t.Fatalf("empty final epoch: %+v", last)
	}
	if report.Evaluations == 0 {
		t.Fatal("no evaluations recorded")
	}
}

// TestGrowFacadeDeterministicPerSeed: two runs of the same config are
// identical in everything but wall time.
func TestGrowFacadeDeterministicPerSeed(t *testing.T) {
	cfg := GrowConfig{Arrivals: 40, Seed: 7}
	a, err := Grow(cfg)
	if err != nil {
		t.Fatalf("Grow: %v", err)
	}
	b, err := Grow(cfg)
	if err != nil {
		t.Fatalf("Grow: %v", err)
	}
	if len(a.Epochs) != len(b.Epochs) {
		t.Fatalf("epoch counts differ: %d vs %d", len(a.Epochs), len(b.Epochs))
	}
	for i := range a.Epochs {
		if a.Epochs[i] != b.Epochs[i] {
			t.Fatalf("epoch %d differs:\n%+v\n%+v", i, a.Epochs[i], b.Epochs[i])
		}
	}
	if a.Evaluations != b.Evaluations || a.Departures != b.Departures || a.Rewires != b.Rewires {
		t.Fatal("run totals differ between identical seeds")
	}
}

func TestGrowFacadeRejectsBadInput(t *testing.T) {
	cases := []GrowConfig{
		{Topology: "torus"},
		{Arrivals: 10, ChurnRate: 2},
		{Arrivals: -1},
		{Topology: "star", SeedSize: 1},            // a 1-node star has no leaves
		{Arrivals: 5, Params: &Params{}},           // zero OnChainCost is invalid
		{Arrivals: 5, BudgetMin: -2, BudgetMax: 4}, // negative budgets are uninterpretable
	}
	for i, cfg := range cases {
		if _, err := Grow(cfg); !errors.Is(err, ErrBadInput) {
			t.Fatalf("case %d (%+v): error = %v, want ErrBadInput", i, cfg, err)
		}
	}
}

// TestGrowFacadeZeroArrivals: a zero-arrival run is valid and reports a
// single epoch describing the untouched seed.
func TestGrowFacadeZeroArrivals(t *testing.T) {
	report, err := Grow(GrowConfig{Topology: "star", SeedSize: 8, Arrivals: 0, Seed: 1})
	if err != nil {
		t.Fatalf("Grow: %v", err)
	}
	if report.Joins != 0 || report.Final.NumUsers() != 8 {
		t.Fatalf("zero-arrival run mutated state: %d joins, %d users", report.Joins, report.Final.NumUsers())
	}
	if len(report.Epochs) != 1 || report.Epochs[0].Nodes != 8 {
		t.Fatalf("epochs = %+v, want one 8-node snapshot", report.Epochs)
	}
}
