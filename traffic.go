package lcg

import (
	"fmt"

	"github.com/lightning-creation-games/lcg/internal/fee"
	"github.com/lightning-creation-games/lcg/internal/graph"
	"github.com/lightning-creation-games/lcg/internal/traffic"
	"github.com/lightning-creation-games/lcg/internal/traffic2"
	"github.com/lightning-creation-games/lcg/internal/txdist"
)

// TrafficConfig parametrises a production-rate traffic replay. It is the
// fast-engine counterpart of SimConfig: the same workload model, executed
// on the allocation-free sharded router of internal/traffic2 instead of
// the live payment network.
type TrafficConfig struct {
	// Events is the number of transactions to replay (required).
	Events int
	// TxDist selects the recipient distribution. "" and "modified-zipf"
	// replay the dense modified-Zipf plane (the historical default,
	// parametrised by ZipfS, with analytic transit predictions).
	// "uniform", "degree" and "distance" select the sparse sampler
	// planes of O(n) memory that scale the replay to n=10000 — they
	// skip the O(n²) analytic transit computation, so PredictedTransit
	// comes back all zeros; rank forwarders by MeasuredTransit instead.
	TxDist string
	// DistParam parametrises the sparse families: the degree exponent α
	// for "degree" (0 means 1) and the per-hop decay for "distance"
	// (0 means 0.5). The dense path ignores it and uses ZipfS.
	DistParam float64
	// ZipfS is the transaction distribution's scale parameter.
	ZipfS float64
	// TotalRate is the aggregate sender rate N; 0 means one transaction
	// per user per time unit.
	TotalRate float64
	// TxSize is the fixed transaction size; 0 sends tiny probes.
	TxSize float64
	// FeePerHop is the fee an intermediary charges per forwarded
	// transaction.
	FeePerHop float64
	// Seed makes the run deterministic.
	Seed int64
	// Shards splits the replay into independent measurement windows;
	// the count is part of the result's identity. 0 means 1.
	Shards int
	// Parallelism bounds worker goroutines; it never changes a digit of
	// the result. 0 uses all cores.
	Parallelism int
	// RebalanceEvery restores a window's balances to deposits every
	// that many events (0 disables) — SimConfig.SteadyState, made
	// quantitative.
	RebalanceEvery int
}

// TrafficReport aggregates a fast-engine replay.
type TrafficReport struct {
	// Events, Successes, Failures count replayed transactions.
	Events, Successes, Failures int
	// Retried counts payments that only routed on the conservative
	// second attempt.
	Retried int
	// SuccessRate is Successes/Events.
	SuccessRate float64
	// Elapsed is the total simulated time across shard windows.
	Elapsed float64
	// Volume is the total value delivered.
	Volume float64
	// FeesPaid is the total routing fees paid by senders.
	FeesPaid float64
	// DepletedArcs counts channel directions drained below 1% of their
	// deposit at window end.
	DepletedArcs int
	// Earned[v] is user v's realized fee income.
	Earned []float64
	// RevenueRate[v] is Earned[v] per simulated time unit — the
	// realized counterpart of Algorithm 1's predicted E^rev_v.
	RevenueRate []float64
	// MeasuredTransit[v] is user v's observed forwarding rate.
	MeasuredTransit []float64
	// PredictedTransit[v] is the analytic rate from §II-B's weighted
	// betweenness.
	PredictedTransit []float64
}

// ReplayTraffic replays a Poisson workload over the network on the fast
// sharded engine: per-channel balance depletion, two-attempt routing with
// payment.Pay's exact semantics, and per-node realized fee revenue, at
// throughputs of millions of payments per minute. The result is a pure
// function of the configuration — worker count never changes it.
func ReplayTraffic(n *Network, cfg TrafficConfig) (TrafficReport, error) {
	if cfg.Events <= 0 {
		return TrafficReport{}, fmt.Errorf("%w: events %d", ErrBadInput, cfg.Events)
	}
	total := cfg.TotalRate
	if total == 0 {
		total = float64(n.NumUsers())
	}
	g := n.graphView()
	var (
		demand  *traffic.Demand
		sampler traffic.Sampler
		err     error
	)
	switch cfg.TxDist {
	case "", "modified-zipf":
		demand, err = traffic.NewUniformDemand(g, txdist.ModifiedZipf{S: cfg.ZipfS}, total)
	case "uniform", "degree", "distance":
		var dist txdist.Distribution
		switch cfg.TxDist {
		case "uniform":
			dist = txdist.Uniform{}
		case "degree":
			alpha := cfg.DistParam
			if alpha == 0 {
				alpha = 1
			}
			dist = txdist.DegreeProportional{Alpha: alpha}
		case "distance":
			decay := cfg.DistParam
			if decay == 0 {
				decay = 0.5
			}
			dist = txdist.DistanceDecay{Decay: decay}
		}
		rates := make([]float64, n.NumUsers())
		for i := range rates {
			rates[i] = total / float64(len(rates))
		}
		sampler, err = traffic.NewSampler(g, dist, rates)
	default:
		return TrafficReport{}, fmt.Errorf("%w: txdist %q (want modified-zipf, uniform, degree or distance)", ErrBadInput, cfg.TxDist)
	}
	if err != nil {
		return TrafficReport{}, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	var sizes traffic.SizeSampler
	if cfg.TxSize > 0 {
		sizes = fee.FixedSize{T: cfg.TxSize}
	}
	res, err := traffic2.Replay(g, traffic2.Config{
		Demand:         demand,
		Sampler:        sampler,
		Sizes:          sizes,
		Fee:            fee.Constant{F: cfg.FeePerHop},
		Events:         cfg.Events,
		Seed:           cfg.Seed,
		Shards:         cfg.Shards,
		Parallelism:    cfg.Parallelism,
		RebalanceEvery: cfg.RebalanceEvery,
	})
	if err != nil {
		return TrafficReport{}, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	report := TrafficReport{
		Events:       res.Events,
		Successes:    res.Successes,
		Failures:     res.Failures,
		Retried:      res.Retried,
		SuccessRate:  res.SuccessRate(),
		Elapsed:      res.Elapsed,
		Volume:       res.Volume,
		FeesPaid:     res.FeesPaid,
		DepletedArcs: res.DepletedArcs,
		Earned:       res.Earned,
	}
	report.RevenueRate = make([]float64, n.NumUsers())
	report.MeasuredTransit = make([]float64, n.NumUsers())
	for v := range report.RevenueRate {
		report.RevenueRate[v] = res.RevenueRate(graph.NodeID(v))
		if res.Elapsed > 0 {
			report.MeasuredTransit[v] = float64(res.Forwarded[v]) / res.Elapsed
		}
	}
	if demand != nil {
		report.PredictedTransit = demand.NodeTransitRates(g)
	} else {
		// The sparse planes exist to avoid O(n²) work; the analytic
		// transit rates are exactly that, so they stay zero.
		report.PredictedTransit = make([]float64, n.NumUsers())
	}
	return report, nil
}
