package lcg

import (
	"fmt"

	"github.com/lightning-creation-games/lcg/internal/game"
)

// DynamicsReport summarises a best-response-dynamics run: which topology
// the creation game converges to when every user iteratively plays its
// utility-maximising rewiring.
type DynamicsReport struct {
	// Final is the resulting topology.
	Final *Network
	// Rounds is the number of full best-response passes executed.
	Rounds int
	// Moves counts accepted improving deviations.
	Moves int
	// Converged reports that the final state is a Nash equilibrium of
	// the rewiring game.
	Converged bool
	// FinalClass coarsely names the final structure: "star", "path",
	// "circle", "complete", "tree", "empty", "disconnected" or "other".
	FinalClass string
	// Welfare is the sum of node utilities in the final state (−Inf when
	// some node ends up disconnected).
	Welfare float64
}

// BestResponseDynamics iterates exhaustive best responses from the given
// starting topology until no user can improve or maxRounds passes have
// run. The starting network is not modified. The search is exponential
// per node, so keep networks small (n ≲ 12).
//
// This extends §IV from "is this topology stable?" to "which topologies
// emerge?" — under the paper's parameters the star dominates, matching
// its conclusion.
func BestResponseDynamics(start *Network, p GameParams, maxRounds int) (DynamicsReport, error) {
	res, err := game.BestResponseDynamics(start.graphView(), p.toGame(), game.DynamicsConfig{
		MaxRounds: maxRounds,
	})
	if err != nil {
		return DynamicsReport{}, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	return DynamicsReport{
		Final:      &Network{g: res.Final},
		Rounds:     res.Rounds,
		Moves:      res.Moves,
		Converged:  res.Converged,
		FinalClass: string(game.Classify(res.Final)),
		Welfare:    res.Welfare,
	}, nil
}
