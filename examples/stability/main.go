// Stability: audit the §IV topologies — for which parameters is the star
// a Nash equilibrium, why is the path never one, and where does the
// circle break?
//
//	go run ./examples/stability
package main

import (
	"fmt"
	"log"

	"github.com/lightning-creation-games/lcg"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Star: sweep the Zipf scale s and the channel cost l, comparing the
	// paper's closed-form Theorem 8 conditions with an exhaustive search
	// over every unilateral deviation.
	fmt.Println("star with 5 leaves — Nash equilibrium map (closed form | exhaustive):")
	fmt.Println("  l\\s      0        1        2        4")
	for _, l := range []float64{0.01, 0.2, 1, 5} {
		fmt.Printf("  %-5g", l)
		for _, s := range []float64{0, 1, 2, 4} {
			params := lcg.GameParams{
				ZipfS:      s,
				SenderRate: 1,
				FAvg:       0.5,
				FeePerHop:  0.5,
				LinkCost:   l,
			}
			closed, exhaustive, err := lcg.StarStable(5, params)
			if err != nil {
				return err
			}
			fmt.Printf("  %s|%s", mark(closed), mark(exhaustive))
			_ = exhaustive
			fmt.Print("   ")
		}
		fmt.Println()
	}
	fmt.Println("  (✓ = equilibrium; stability grows with link cost and with s, per Theorems 7-9)")

	// Theorem 9's sufficient regime.
	t9 := lcg.GameParams{ZipfS: 2.5, SenderRate: 1, FAvg: 0.5, FeePerHop: 0.5, LinkCost: 1}
	fmt.Printf("\nTheorem 9 regime (s≥2, a/H≤l, b/H≤l) holds for s=2.5, l=1: %v\n",
		lcg.Theorem9Regime(5, t9))

	// Path: Theorem 10 — an endpoint always gains by re-attaching.
	fmt.Println("\npath graphs (Theorem 10 — never stable):")
	for _, n := range []int{4, 6, 8} {
		dev, found, err := lcg.PathInstabilityWitness(n, lcg.DefaultGameParams())
		if err != nil {
			return err
		}
		fmt.Printf("  n=%d: endpoint re-attaches to %v, gain %.4f (found=%v)\n",
			n, dev.Neighbors, dev.Gain, found)
	}

	// Circle: Theorem 11 — the crossover size grows with the link cost.
	fmt.Println("\ncircle crossover n0 (Theorem 11 — unstable beyond n0):")
	for _, l := range []float64{0.1, 0.5, 1, 2} {
		params := lcg.GameParams{ZipfS: 0.5, SenderRate: 1, FAvg: 0.5, FeePerHop: 0.5, LinkCost: l}
		n0, found, err := lcg.CircleCrossover(params, 64)
		if err != nil {
			return err
		}
		if found {
			fmt.Printf("  l=%-4g → n0 = %d\n", l, n0)
		} else {
			fmt.Printf("  l=%-4g → stable up to n=64\n", l)
		}
	}

	// Theorem 6: the hub bound on a concrete stable star.
	pathLen, bound, holds, err := lcg.HubBound(lcg.Star(6, 1), t9, 0)
	if err != nil {
		return err
	}
	fmt.Printf("\nTheorem 6 hub bound on the stable star(6): d = %d ≤ %.2f (holds: %v)\n",
		pathLen, bound, holds)
	return nil
}

func mark(b bool) string {
	if b {
		return "✓"
	}
	return "·"
}
