// Quickstart: price and optimise joining an existing payment channel
// network with each of the paper's three algorithms.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/lightning-creation-games/lcg"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// An existing PCN: 30 users grown by preferential attachment — the
	// process that motivates the paper's degree-ranked transaction model.
	network := lcg.BarabasiAlbert(30, 2, 10, 42)
	fmt.Printf("existing network: %d users, %d channels\n",
		network.NumUsers(), network.NumChannels())

	// Economic parameters of the joining user (§II-C): on-chain cost per
	// channel, opportunity cost of locked coins, expected fees earned and
	// paid, and the user's own transaction rate.
	params := lcg.Params{
		OnChainCost: 1,
		OppCostRate: 0.02,
		FAvg:        1,
		FeePerHop:   0.2,
		OwnRate:     2,
	}
	planner, err := lcg.NewJoinPlanner(network,
		lcg.WithZipf(1.5), // transactions favour high-degree nodes
		lcg.WithParams(params),
	)
	if err != nil {
		return err
	}

	const budget = 8.0

	// Algorithm 1: fixed lock per channel, (1−1/e)-approximate, linear
	// in the number of candidate peers.
	greedy, err := planner.Greedy(budget, 1)
	if err != nil {
		return err
	}
	show("Algorithm 1 (greedy, fixed locks)", greedy)

	// Algorithm 2: locks in multiples of 1, exhaustive over divisions of
	// the budget.
	discrete, err := planner.DiscreteSearch(budget, 1)
	if err != nil {
		return err
	}
	show("Algorithm 2 (discretised locks)", discrete)

	// §III-D: continuous locks via local search on the benefit function.
	continuous, err := planner.ContinuousSearch(budget)
	if err != nil {
		return err
	}
	show("§III-D (continuous locks)", continuous)

	// Price the greedy plan's components explicitly.
	fmt.Println("\ngreedy plan decomposition:")
	fmt.Printf("  expected routing revenue: %8.4f\n", planner.Revenue(greedy.Strategy))
	fmt.Printf("  expected fees paid:       %8.4f\n", planner.Fees(greedy.Strategy))
	fmt.Printf("  channel costs:            %8.4f\n", planner.Cost(greedy.Strategy))
	fmt.Printf("  utility U:                %8.4f\n", planner.Utility(greedy.Strategy))
	return nil
}

func show(name string, plan lcg.Plan) {
	fmt.Printf("\n%s\n", name)
	for _, a := range plan.Strategy {
		fmt.Printf("  → open channel to user %d with lock %.3g\n", a.Peer, a.Lock)
	}
	fmt.Printf("  objective %.4f, utility %.4f, %d evaluations\n",
		plan.Objective, plan.Utility, plan.Evaluations)
}
