// Routingsim: replay a Poisson transaction workload over live payment
// channels and compare the measured forwarding rates with the analytic
// λ estimates of §II-B — the validation behind the utility model.
//
//	go run ./examples/routingsim
package main

import (
	"fmt"
	"log"
	"math"

	"github.com/lightning-creation-games/lcg"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	network := lcg.BarabasiAlbert(24, 2, 2000, 9)
	fmt.Printf("network: %d users, %d channels (preferential attachment)\n",
		network.NumUsers(), network.NumChannels())

	report, err := lcg.Simulate(network, lcg.SimConfig{
		Events:      30000,
		ZipfS:       1,
		TxSize:      1,
		FeePerHop:   0.01,
		OnChainFee:  1,
		Seed:        9,
		SteadyState: true,
	})
	if err != nil {
		return err
	}
	fmt.Printf("replayed %d transactions: %.1f%% delivered, volume %.0f, fees paid %.2f\n\n",
		report.Events, 100*report.SuccessRate, report.Volume, report.FeesPaid)

	fmt.Println("top forwarders — measured vs analytic transit rate (tx per time unit):")
	fmt.Println("  user   measured   analytic   rel err")
	for _, v := range topK(report.PredictedTransit, 8) {
		measured := report.MeasuredTransit[v]
		predicted := report.PredictedTransit[v]
		rel := math.NaN()
		if predicted > 0 {
			rel = math.Abs(measured-predicted) / predicted
		}
		fmt.Printf("  %-5d  %8.4f   %8.4f   %6.1f%%\n", v, measured, predicted, 100*rel)
	}

	// The same network without steady-state rebalancing: depletion pushes
	// the success rate down — the phenomenon behind the paper's
	// capacity-reduced subgraph (§II-B) and Figure 1's failed payment.
	depleted, err := lcg.Simulate(network, lcg.SimConfig{
		Events:     30000,
		ZipfS:      1,
		TxSize:     40, // large payments deplete directions quickly
		FeePerHop:  0.01,
		OnChainFee: 1,
		Seed:       9,
	})
	if err != nil {
		return err
	}
	fmt.Printf("\nwithout rebalancing and with 40× larger payments: %.1f%% delivered\n",
		100*depleted.SuccessRate)
	fmt.Println("(depletion is why §II-B computes routes on the capacity-reduced subgraph)")
	return nil
}

// topK returns the indices of the k largest values, descending.
func topK(values []float64, k int) []int {
	order := make([]int, len(values))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && values[order[j]] > values[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	if k > len(order) {
		k = len(order)
	}
	return order[:k]
}
