// Dynamics: which topologies does the channel-creation game actually
// produce? Starting from paths, circles and random graphs, every user
// iteratively plays its best response; the paper's analysis predicts the
// star should dominate under the degree-ranked transaction model — and
// it does.
//
//	go run ./examples/dynamics
package main

import (
	"fmt"
	"log"

	"github.com/lightning-creation-games/lcg"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	params := lcg.GameParams{
		ZipfS:      2,   // strong degree bias
		SenderRate: 1,   // one tx per user per time unit
		FAvg:       0.5, // fee earned per forwarded tx
		FeePerHop:  0.5, // fee paid per hop
		LinkCost:   1,   // per-party channel cost
	}

	starts := map[string]*lcg.Network{
		"path(6)":   lcg.PathNetwork(6, 1),
		"circle(6)": lcg.Circle(6, 1),
		"star(5)":   lcg.Star(5, 1),
		"er(6)":     lcg.ErdosRenyi(6, 0.4, 1, 3),
	}

	fmt.Println("best-response dynamics under s=2, l=1 (the paper's stable-star regime):")
	fmt.Println()
	fmt.Printf("  %-10s  %-7s  %-6s  %-10s  %-8s\n", "start", "rounds", "moves", "converged", "final")
	for _, name := range []string{"path(6)", "circle(6)", "star(5)", "er(6)"} {
		report, err := lcg.BestResponseDynamics(starts[name], params, 30)
		if err != nil {
			return err
		}
		fmt.Printf("  %-10s  %-7d  %-6d  %-10v  %-8s\n",
			name, report.Rounds, report.Moves, report.Converged, report.FinalClass)
	}

	fmt.Println()
	fmt.Println("with nearly-free channels (l = 0.05) the game need not settle:")
	cheap := params
	cheap.LinkCost = 0.05
	cheap.ZipfS = 0.5
	report, err := lcg.BestResponseDynamics(lcg.PathNetwork(6, 1), cheap, 15)
	if err != nil {
		return err
	}
	fmt.Printf("  path(6): rounds=%d moves=%d converged=%v final=%s\n",
		report.Rounds, report.Moves, report.Converged, report.FinalClass)
	fmt.Println()
	fmt.Println("paper §IV conclusion: \"under a realistic transaction model, the star")
	fmt.Println("graph is the predominant topology\" — the dynamics agree.")
	return nil
}
