// Joining: the paper's Figure 2 worked example, end to end.
//
// E joins a PCN with existing users A, B, C, D (a path A-B-C-D). E plans
// to transact with B once a month; A makes 9 transactions a month with D.
// E can afford two channels plus 19 spare coins. The optimiser must
// recommend channels to A and D, with the channel to D funded to carry
// all nine monthly transactions — the paper's (A:10, D:9) answer.
//
//	go run ./examples/joining
package main

import (
	"fmt"
	"log"
	"math"

	"github.com/lightning-creation-games/lcg"
)

const (
	userA = 0
	userB = 1
	userC = 2
	userD = 3
)

var names = map[int]string{userA: "A", userB: "B", userC: "C", userD: "D"}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The existing PCN: A-B-C-D with comfortably funded channels.
	network := lcg.PathNetwork(4, 100)

	// Existing traffic: A sends 9 transactions per month, all to D.
	rates := []float64{9, 0, 0, 0}
	probs := [][]float64{
		{0, 0, 0, 1}, // A → D always
		{0, 0, 0, 0},
		{0, 0, 0, 0},
		{0, 0, 0, 0},
	}

	// E's side: one monthly transaction, always to B. With C = 20 the
	// budget 2C+19 = 59 affords exactly two channels. Transactions and
	// fees are unit-sized as in the figure; a channel forwards the
	// month's transit only if its lock covers the nine transactions.
	planner, err := lcg.NewJoinPlanner(network,
		lcg.WithDemand(rates, probs),
		lcg.WithJoinTargets(map[int]float64{userB: 1}),
		lcg.WithParams(lcg.Params{
			OnChainCost:    20,
			FAvg:           1,
			FeePerHop:      1,
			OwnRate:        1,
			CapacityFactor: func(lock float64) float64 { return math.Min(1, lock/9) },
		}),
	)
	if err != nil {
		return err
	}

	budget := 2*20.0 + 19
	fmt.Printf("E joins A-B-C-D with budget %.0f (two channels + 19 coins)\n\n", budget)

	// Compare the hand-picked candidate strategies of the figure.
	fmt.Println("candidate strategies (exact revenue model):")
	candidates := []lcg.Strategy{
		{{Peer: userA, Lock: 10}, {Peer: userD, Lock: 9}}, // the paper's answer
		{{Peer: userA, Lock: 19}},
		{{Peer: userB, Lock: 19}},
		{{Peer: userB, Lock: 10}, {Peer: userC, Lock: 9}},
		{{Peer: userA, Lock: 10}, {Peer: userB, Lock: 9}},
	}
	for _, s := range candidates {
		fmt.Printf("  %-14s revenue %5.2f  fees %5.2f  U' %6.2f\n",
			renderStrategy(s), planner.Revenue(s), planner.Fees(s),
			planner.Revenue(s)-planner.Fees(s))
	}

	// Let Algorithm 2 decide.
	plan, err := planner.DiscreteSearch(budget, 1)
	if err != nil {
		return err
	}
	fmt.Printf("\noptimizer (Algorithm 2) chooses: %s\n", renderStrategy(plan.Strategy))
	fmt.Println("\npaper's Figure 2: \"E should create channels with A and D of sizes")
	fmt.Println("10 and 9 to maximize the intermediary revenue and minimize E's own")
	fmt.Println("transaction costs.\"")
	return nil
}

func renderStrategy(s lcg.Strategy) string {
	if len(s) == 0 {
		return "(none)"
	}
	out := ""
	for i, a := range s {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s:%g", names[a.Peer], a.Lock)
	}
	return out
}
